"""Persisting experiment results.

Benchmarks print their tables to stdout; for downstream analysis (plotting,
regression tracking across runs) the same results can be written to and read
back from JSON with these helpers.  Numpy scalars/arrays and the library's
result dataclasses are converted to plain JSON types automatically.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

__all__ = ["save_results_json", "load_results_json"]

PathLike = Union[str, Path]


def _to_jsonable(value: Any) -> Any:
    """Recursively convert numpy / dataclass values into JSON-serialisable ones."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "as_dict"):
        return _to_jsonable(value.as_dict())
    raise TypeError(f"cannot serialise value of type {type(value).__name__}")


def save_results_json(results: Dict[str, Any], path: PathLike, metadata: Dict[str, Any] = None) -> Path:
    """Write a results dictionary (e.g. one benchmark's rows) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"metadata": _to_jsonable(metadata or {}), "results": _to_jsonable(results)}
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_results_json(path: PathLike) -> Dict[str, Any]:
    """Load a results file written by :func:`save_results_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if "results" not in payload:
        raise ValueError(f"{path} does not look like a results file (missing 'results' key)")
    return payload
