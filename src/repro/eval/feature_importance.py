"""Feature-importance analysis for tree-based censors (Figure 4).

Figure 4 counts how many of the top-50 most important DT/RF features are
packet-derived versus timing-derived, explaining why Amoeba spends more of
its budget reshaping sizes than delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ImportanceBreakdown", "cumulative_category_counts"]


@dataclass(frozen=True)
class ImportanceBreakdown:
    """Packet vs. timing composition of the top-k important features."""

    model_name: str
    top_k: int
    packet_count: int
    timing_count: int
    ranked_features: Tuple[Tuple[str, str, float], ...]

    @property
    def packet_fraction(self) -> float:
        total = self.packet_count + self.timing_count
        return self.packet_count / total if total else 0.0

    def as_dict(self) -> Dict:
        return {
            "model": self.model_name,
            "top_k": self.top_k,
            "packet": self.packet_count,
            "timing": self.timing_count,
            "packet_fraction": self.packet_fraction,
        }

    @classmethod
    def from_censor(cls, censor, top_k: int = 50) -> "ImportanceBreakdown":
        """Build from a tree-based censor exposing ``top_feature_importances``."""
        ranked = tuple(censor.top_feature_importances(top_k))
        packet = sum(1 for _, category, _ in ranked if category == "packet")
        timing = sum(1 for _, category, _ in ranked if category == "timing")
        return cls(
            model_name=censor.name,
            top_k=top_k,
            packet_count=packet,
            timing_count=timing,
            ranked_features=ranked,
        )


def cumulative_category_counts(
    ranked_features: Sequence[Tuple[str, str, float]]
) -> Dict[str, np.ndarray]:
    """Running count of packet/timing features along the importance ranking.

    This is the per-position series Figure 4 plots on its x-axis (features in
    descending importance) and y-axis (number of features of each category).
    """
    if not ranked_features:
        raise ValueError("ranked_features must be non-empty")
    packet = np.cumsum([1 if category == "packet" else 0 for _, category, _ in ranked_features])
    timing = np.cumsum([1 if category == "timing" else 0 for _, category, _ in ranked_features])
    return {"packet": packet, "timing": timing}
