"""Attack-level evaluation metrics (Section 5.3).

* **Attack success rate (ASR)** — fraction of adversarial flows misclassified
  as benign.
* **Data overhead** — padding / (original payload + padding).
* **Time overhead** — added delays / (added delays + total transmission time).

plus helpers to evaluate a censoring classifier's detection performance
(accuracy / F1 with the *censored* class as the positive class, which is what
Table 1's "no attack" columns report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..censors.base import CensorClassifier
from ..flows.flow import Flow, FlowLabel
from ..ml.metrics import accuracy_score, f1_score

__all__ = [
    "attack_success_rate",
    "data_overhead",
    "time_overhead",
    "classifier_detection_report",
    "adversarial_flow_overheads",
]


def attack_success_rate(successes: Sequence[bool]) -> float:
    """Fraction of adversarial samples that evaded the censor."""
    successes = list(successes)
    if not successes:
        raise ValueError("empty success list")
    return float(np.mean([bool(s) for s in successes]))


def data_overhead(original_payload: float, padding: float) -> float:
    """padding / (original payload + padding)."""
    if original_payload < 0 or padding < 0:
        raise ValueError("payload and padding must be non-negative")
    denominator = original_payload + padding
    return float(padding / denominator) if denominator > 0 else 0.0


def time_overhead(added_delays: float, total_transmission_time: float) -> float:
    """delays / (delays + total transmission time)."""
    if added_delays < 0 or total_transmission_time < 0:
        raise ValueError("delays and transmission time must be non-negative")
    denominator = added_delays + total_transmission_time
    return float(added_delays / denominator) if denominator > 0 else 0.0


def adversarial_flow_overheads(original: Flow, adversarial: Flow) -> Dict[str, float]:
    """Compute data/time overhead of an adversarial flow w.r.t. its original."""
    original_bytes = float(np.abs(original.sizes).sum())
    adversarial_bytes = float(np.abs(adversarial.sizes).sum())
    padding = max(0.0, adversarial_bytes - original_bytes)
    added_delay = max(0.0, adversarial.duration - original.duration)
    return {
        "data_overhead": data_overhead(original_bytes, padding),
        "time_overhead": time_overhead(added_delay, original.duration),
    }


def classifier_detection_report(
    censor: CensorClassifier, flows: Sequence[Flow], labels: Optional[Sequence[int]] = None
) -> Dict[str, float]:
    """Accuracy and F1 of a censor detecting censored flows (Table 1, 'None' column).

    F1 treats the *censored* class as positive, since that is the class the
    censor is trying to detect.
    """
    flows = list(flows)
    if labels is None:
        labels = [flow.label for flow in flows]
    labels = np.asarray(labels, dtype=int)
    predictions = censor.classify_many(flows)
    # Map to "detected censored" indicator: positive = censored.
    true_positive_labels = (labels == FlowLabel.CENSORED).astype(int)
    predicted_positive = (predictions == FlowLabel.CENSORED).astype(int)
    return {
        "accuracy": accuracy_score(labels, predictions),
        "f1": f1_score(true_positive_labels, predicted_positive),
    }
