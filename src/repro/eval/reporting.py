"""Plain-text report formatting for benchmark output.

Every benchmark prints the rows/series the corresponding table or figure in
the paper reports; these helpers keep that output consistent and readable
without requiring any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_percent", "format_series"]


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str], title: str = "") -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        raise ValueError("cannot format an empty table")
    widths = {col: len(col) for col in columns}
    rendered_rows: List[Dict[str, str]] = []
    for row in rows:
        rendered = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                rendered[col] = f"{value:.3f}"
            else:
                rendered[col] = str(value)
            widths[col] = max(widths[col], len(rendered[col]))
        rendered_rows.append(rendered)

    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[col].ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def format_series(label: str, xs: Iterable[float], ys: Iterable[float], x_name: str = "x", y_name: str = "y") -> str:
    """Render an (x, y) series as aligned columns (one line per point)."""
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise ValueError("x and y series must have equal length")
    lines = [f"{label}: {x_name} -> {y_name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>12.1f} -> {y:.4f}")
    return "\n".join(lines)
