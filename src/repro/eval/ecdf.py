"""Empirical cumulative distribution functions (Figures 5 and 11).

Figure 5 plots the ECDF of classification scores of adversarial flows against
the NN-based censors; Figure 11 plots the distribution of same-direction
inter-packet delays that motivates the offline profile deployment mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["ECDF", "empirical_cdf", "fraction_below", "delay_distribution_summary"]


@dataclass(frozen=True)
class ECDF:
    """An empirical CDF: sorted values and cumulative probabilities."""

    values: np.ndarray
    probabilities: np.ndarray

    def evaluate(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return float(np.searchsorted(self.values, x, side="right") / len(self.values))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self.values, q))

    def as_dict(self) -> Dict:
        return {"values": self.values.tolist(), "probabilities": self.probabilities.tolist()}


def empirical_cdf(samples: Sequence[float]) -> ECDF:
    """Build the ECDF of a sample set."""
    values = np.sort(np.asarray(list(samples), dtype=np.float64))
    if values.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    probabilities = np.arange(1, len(values) + 1) / len(values)
    return ECDF(values=values, probabilities=probabilities)


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold`` (Fig. 11's 67.5 % statistic)."""
    samples = np.asarray(list(samples), dtype=np.float64)
    if samples.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(samples < threshold))


def delay_distribution_summary(delays_ms: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of an inter-packet delay sample (Figure 11 box plot)."""
    delays = np.asarray(list(delays_ms), dtype=np.float64)
    if delays.size == 0:
        raise ValueError("empty delay sample")
    return {
        "mean": float(delays.mean()),
        "median": float(np.median(delays)),
        "p25": float(np.percentile(delays, 25)),
        "p75": float(np.percentile(delays, 75)),
        "p95": float(np.percentile(delays, 95)),
        "max": float(delays.max()),
    }
