"""Action analysis: how Amoeba reshapes flows (Appendix A.5, Figure 14).

Figure 14 plots, per censoring classifier, the histogram of how many
truncation / padding / delay actions the agent takes per flow.  The helpers
here aggregate those counts from :class:`~repro.core.agent.AdversarialResult`
objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.agent import AdversarialResult
from ..core.env import ActionKind

__all__ = ["ActionHistogram", "action_histogram", "summarise_action_usage"]


@dataclass(frozen=True)
class ActionHistogram:
    """Histogram of per-flow action counts for one action kind."""

    kind: str
    bin_edges: np.ndarray
    counts: np.ndarray
    mean_per_flow: float

    def as_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "bin_edges": self.bin_edges.tolist(),
            "counts": self.counts.tolist(),
            "mean_per_flow": self.mean_per_flow,
        }


def action_histogram(
    results: Sequence[AdversarialResult],
    kind: str,
    bins: int = 10,
    max_count: int = 50,
) -> ActionHistogram:
    """Histogram of the number of ``kind`` actions taken per adversarial flow."""
    if not results:
        raise ValueError("no adversarial results provided")
    valid_kinds = {ActionKind.TRUNCATION, ActionKind.PADDING, ActionKind.DELAY}
    if kind not in valid_kinds:
        raise ValueError(f"kind must be one of {sorted(valid_kinds)}")
    counts_per_flow = np.asarray([result.action_counts[kind] for result in results], dtype=float)
    histogram, edges = np.histogram(counts_per_flow, bins=bins, range=(0, max_count))
    return ActionHistogram(
        kind=kind,
        bin_edges=edges,
        counts=histogram,
        mean_per_flow=float(counts_per_flow.mean()),
    )


def summarise_action_usage(results: Sequence[AdversarialResult]) -> Dict[str, float]:
    """Mean number of truncation/padding/delay actions per flow."""
    if not results:
        raise ValueError("no adversarial results provided")
    summary = {}
    for kind in (ActionKind.TRUNCATION, ActionKind.PADDING, ActionKind.DELAY):
        summary[kind] = float(np.mean([result.action_counts[kind] for result in results]))
    summary["mean_steps"] = float(np.mean([result.n_steps for result in results]))
    summary["mean_original_length"] = float(
        np.mean([result.original_flow.n_packets for result in results])
    )
    return summary
