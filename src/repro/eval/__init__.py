"""Evaluation: attack metrics, transferability, convergence, ECDFs and reporting."""

from .action_analysis import ActionHistogram, action_histogram, summarise_action_usage
from .convergence import ConvergenceCurve, curve_from_log, queries_to_reach
from .ecdf import ECDF, delay_distribution_summary, empirical_cdf, fraction_below
from .feature_importance import ImportanceBreakdown, cumulative_category_counts
from .metrics import (
    adversarial_flow_overheads,
    attack_success_rate,
    classifier_detection_report,
    data_overhead,
    time_overhead,
)
from .reporting import format_percent, format_series, format_table
from .results_io import load_results_json, save_results_json
from .transferability import TransferabilityMatrix, transferability_matrix

__all__ = [
    "attack_success_rate",
    "data_overhead",
    "time_overhead",
    "adversarial_flow_overheads",
    "classifier_detection_report",
    "TransferabilityMatrix",
    "transferability_matrix",
    "ActionHistogram",
    "action_histogram",
    "summarise_action_usage",
    "ConvergenceCurve",
    "curve_from_log",
    "queries_to_reach",
    "ECDF",
    "empirical_cdf",
    "fraction_below",
    "delay_distribution_summary",
    "ImportanceBreakdown",
    "cumulative_category_counts",
    "format_table",
    "format_percent",
    "format_series",
    "save_results_json",
    "load_results_json",
]
