"""Convergence-curve utilities (Figures 7 and 9).

The Amoeba training log records, per PPO update, the cumulative number of
censor queries, the cumulative timesteps and the (train or held-out) attack
success rate.  These helpers turn that log into the (x, y) series the paper
plots and compute simple convergence statistics used in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.logging import TrainingLogger

__all__ = ["ConvergenceCurve", "curve_from_log", "queries_to_reach"]


@dataclass(frozen=True)
class ConvergenceCurve:
    """A named (x, y) series, e.g. ASR as a function of queries or timesteps."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def final_value(self) -> float:
        return float(self.y[-1]) if len(self.y) else float("nan")

    def best_value(self) -> float:
        return float(np.max(self.y)) if len(self.y) else float("nan")

    def as_dict(self) -> Dict:
        return {"label": self.label, "x": self.x.tolist(), "y": self.y.tolist()}


def curve_from_log(
    log: TrainingLogger,
    y_key: str = "train_asr",
    x_key: str = "queries",
    label: str = "amoeba",
) -> ConvergenceCurve:
    """Extract a convergence curve from a training log."""
    y = np.asarray(log.series(y_key), dtype=float)
    x = np.asarray(log.series(x_key), dtype=float)
    if len(x) != len(y):
        # Keys logged at different cadences (e.g. periodic test_asr); align on the tail.
        length = min(len(x), len(y))
        x, y = x[-length:] if length else x, y[-length:] if length else y
    return ConvergenceCurve(label=label, x=x, y=y)


def queries_to_reach(curve: ConvergenceCurve, target_asr: float) -> Optional[float]:
    """First x value at which the curve reaches ``target_asr`` (None if never)."""
    if not 0.0 <= target_asr <= 1.0:
        raise ValueError("target_asr must be in [0, 1]")
    reached = np.nonzero(curve.y >= target_asr)[0]
    if reached.size == 0:
        return None
    return float(curve.x[reached[0]])
