"""Synthetic load generator for the serving tier.

Builds an interleaved per-packet arrival schedule from the library's
synthetic traffic generators (Tor / V2Ray / HTTPS mixes, the same
distributions the censors are trained on) at a target aggregate arrival
rate, and drives a :class:`~repro.serve.server.PolicyServer` (or
:class:`~repro.serve.sharded.ShardedPolicyServer`) through it.

The schedule is *virtual-time* ordered: flow start offsets and inter-packet
gaps define the interleaving of sessions — i.e. which sessions' packets
contend for the same batches — while the run itself executes as fast as the
server can serve (offered-load mode, which is what a throughput benchmark
wants).  Decision latencies are measured on the wall clock, so deadline
tracking still reflects what the serving process can actually sustain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..flows.flow import Flow
from ..flows.generators import (
    HTTPSFlowGenerator,
    TorFlowGenerator,
    V2RayFlowGenerator,
)
from ..utils.rng import ensure_rng
from .server import summarize_stats

__all__ = ["PacketEvent", "SyntheticWorkload", "LoadReport", "run_workload"]

_GENERATORS = {
    "tor": TorFlowGenerator,
    "v2ray": V2RayFlowGenerator,
    "https": HTTPSFlowGenerator,
}


@dataclass(frozen=True)
class PacketEvent:
    """One packet arrival in the virtual-time schedule."""

    time_ms: float
    session_id: str
    size: float
    delay_ms: float


@dataclass
class SyntheticWorkload:
    """An arrival schedule over a set of synthetic flows."""

    events: List[PacketEvent]
    flows: Dict[str, Flow]
    protocols: Dict[str, str]
    arrival_rate_pps: float

    @property
    def n_sessions(self) -> int:
        return len(self.flows)

    @property
    def n_packets(self) -> int:
        return len(self.events)

    @classmethod
    def generate(
        cls,
        n_sessions: int,
        mix: Optional[Dict[str, float]] = None,
        arrival_rate_pps: float = 1000.0,
        max_packets: int = 24,
        rng=None,
    ) -> "SyntheticWorkload":
        """Sample ``n_sessions`` flows from a protocol mix and schedule them.

        ``mix`` maps generator names (``tor`` / ``v2ray`` / ``https``) to
        weights; each session samples its protocol from the normalised mix.
        The natural time span of the sampled flows is rescaled so the
        aggregate packet arrival rate equals ``arrival_rate_pps``, and each
        session starts at a uniform offset inside the span, so packets of
        different sessions interleave the way concurrent proxy traffic
        would.
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if arrival_rate_pps <= 0:
            raise ValueError("arrival_rate_pps must be positive")
        rng = ensure_rng(rng)
        mix = dict(mix or {"tor": 0.5, "https": 0.3, "v2ray": 0.2})
        unknown = set(mix) - set(_GENERATORS)
        if unknown:
            raise ValueError(f"unknown generators in mix: {sorted(unknown)}")
        names = sorted(mix)
        weights = np.asarray([mix[name] for name in names], dtype=np.float64)
        if weights.sum() <= 0:
            raise ValueError("mix weights must sum to a positive value")
        weights = weights / weights.sum()
        generators = {name: _GENERATORS[name](rng=rng) for name in names}

        flows: Dict[str, Flow] = {}
        protocols: Dict[str, str] = {}
        for index in range(n_sessions):
            protocol = names[int(rng.choice(len(names), p=weights))]
            flow = generators[protocol].generate()
            if flow.n_packets > max_packets:
                flow = Flow(
                    sizes=flow.sizes[:max_packets],
                    delays=flow.delays[:max_packets],
                    label=flow.label,
                    protocol=flow.protocol,
                    metadata=dict(flow.metadata),
                )
            session_id = f"flow{index}"
            flows[session_id] = flow
            protocols[session_id] = protocol

        total_packets = sum(flow.n_packets for flow in flows.values())
        span_ms = max(total_packets / arrival_rate_pps * 1000.0, 1e-6)
        events: List[PacketEvent] = []
        for session_id, flow in flows.items():
            natural = np.cumsum(flow.delays)
            natural_span = float(natural[-1]) if flow.n_packets else 0.0
            scale = span_ms / max(natural_span, 1e-6)
            start = float(rng.uniform(0.0, span_ms))
            times = start + natural * min(scale, 1.0)
            for size, delay, t in zip(flow.sizes, flow.delays, times):
                events.append(
                    PacketEvent(
                        time_ms=float(t),
                        session_id=session_id,
                        size=float(size),
                        delay_ms=float(delay),
                    )
                )
        events.sort(key=lambda event: (event.time_ms, event.session_id))
        return cls(
            events=events,
            flows=flows,
            protocols=protocols,
            arrival_rate_pps=float(arrival_rate_pps),
        )


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run against a serving tier."""

    n_sessions: int
    n_packets: int
    decisions: int
    wall_seconds: float
    decisions_per_s: float
    p50_latency_ms: float
    p99_latency_ms: float
    deadline_miss_rate: float
    profile_fallback_rate: float
    stats: Dict[str, object] = field(repr=False, default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_sessions": float(self.n_sessions),
            "n_packets": float(self.n_packets),
            "decisions": float(self.decisions),
            "wall_seconds": self.wall_seconds,
            "decisions_per_s": self.decisions_per_s,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "profile_fallback_rate": self.profile_fallback_rate,
        }


def run_workload(server, workload: SyntheticWorkload, close_sessions: bool = True) -> LoadReport:
    """Drive a serving tier through a workload; returns aggregate metrics.

    ``server`` is anything with the :class:`~repro.serve.server.PolicyServer`
    session surface (the sharded driver qualifies).  Packets are submitted
    in schedule order with a ``poll()`` after each arrival (timeout-based
    flushes), a final ``drain()`` serves the tail, and sessions are closed
    so profile fallbacks are embedded and accounted.
    """
    start = time.perf_counter()
    for session_id, flow in workload.flows.items():
        server.open_session(session_id, protocol=workload.protocols[session_id])
    for event in workload.events:
        server.submit(event.session_id, event.size, event.delay_ms)
        server.poll()
    server.drain()
    if close_sessions:
        if hasattr(server, "close_all"):
            server.close_all()
        else:
            for session_id in list(workload.flows):
                server.close_session(session_id)
    wall = time.perf_counter() - start

    stats = server.stats()
    summary = summarize_stats(stats)
    decisions = int(summary["decisions"])
    return LoadReport(
        n_sessions=workload.n_sessions,
        n_packets=workload.n_packets,
        decisions=decisions,
        wall_seconds=float(wall),
        decisions_per_s=decisions / wall if wall > 0 else 0.0,
        p50_latency_ms=summary["p50_latency_ms"],
        p99_latency_ms=summary["p99_latency_ms"],
        deadline_miss_rate=summary["deadline_miss_rate"],
        profile_fallback_rate=summary["profile_fallback_rate"],
        stats=stats,
    )
