"""Online policy-serving subsystem: continuous-batching inference for live
flow shaping (the deployment tier of Section 5.6).

* :class:`~repro.serve.server.PolicyServer` — loads an actor/encoder
  checkpoint and serves per-packet shaping decisions to concurrent flow
  sessions, one incremental encoder state per session.
* :class:`~repro.serve.scheduler.ContinuousBatchScheduler` — coalesces
  pending decisions across sessions into single batched forwards.
* :class:`~repro.serve.session.FlowSession` — per-flow emulator state,
  latency/deadline tracking and profile-tier fallback.
* :class:`~repro.serve.sharded.ShardedPolicyServer` — sessions partitioned
  across forked serving workers (the ``repro.distrib`` pipe pattern).
* :mod:`~repro.serve.loadgen` — synthetic Tor/V2Ray/HTTPS packet schedules
  to exercise the tier at a target arrival rate.
"""

from .fastpath import Float32ServingPath
from .loadgen import LoadReport, PacketEvent, SyntheticWorkload, run_workload
from .scheduler import ContinuousBatchScheduler, DecisionRequest
from .server import PolicyServer, ServeConfig, build_policy_from_state, summarize_stats
from .session import (
    FlowSession,
    SessionLimits,
    SessionReport,
    SessionStatus,
    ShapingDecision,
)
from .sharded import ShardedPolicyServer

__all__ = [
    "PolicyServer",
    "ServeConfig",
    "build_policy_from_state",
    "summarize_stats",
    "ContinuousBatchScheduler",
    "DecisionRequest",
    "FlowSession",
    "SessionLimits",
    "SessionReport",
    "SessionStatus",
    "ShapingDecision",
    "ShardedPolicyServer",
    "Float32ServingPath",
    "SyntheticWorkload",
    "PacketEvent",
    "LoadReport",
    "run_workload",
]
