"""Float32 end-to-end serving path.

``ServeConfig(backend="float32")`` used to change only the matmul dtype: every
flush still round-tripped through the float64 Tensor machinery — encoder
states stored as f64, operands cast f64→f32→f64 per matmul, autograd-node
bookkeeping on every forward.  :class:`Float32ServingPath` removes the
round-trip: it snapshots float32 copies of the encoder GRU cells and the
actor MLP at server construction and runs the per-flush forwards as plain
float32 numpy on preallocated scratch, with the per-session
:class:`~repro.core.state_encoder.EncoderState` kept in float32 *between*
flushes.  Nothing widens back to float64 until the chosen action leaves the
policy for the (float64) shaping emulator.

Accuracy contract (documented, tested in ``tests/test_serve.py``): the gate
math is the same functional form as the float64 oracle
(:func:`repro.nn.backend._np_gru_gates` is dtype-generic), evaluated in
float32, so served decisions track the float64 path to float32 rounding —
emitted packet sizes and delays agree within a small relative tolerance,
decision counts match, and deadline/fallback behaviour is identical under
identical latency conditions.  Bit-equivalence to ``Amoeba.attack`` is
deliberately given up; never use this path for training or equivalence
testing.

Weight snapshots are taken once at construction: a server whose actor or
encoder parameters are mutated afterwards must build a new
:class:`Float32ServingPath` (the :class:`~repro.serve.server.PolicyServer`
constructs one per server, and servers are built per checkpoint).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.actor_critic import GaussianActor
from ..core.state_encoder import EncoderState, StateEncoder
from ..nn.backend import _np_gru_gates
from ..nn.layers import Linear, ReLU, Tanh

__all__ = ["Float32ServingPath"]


class Float32ServingPath:
    """Float32 snapshots of the serving policy plus preallocated scratch.

    The three entry points mirror what a :class:`PolicyServer` flush needs:

    * :meth:`initial_state` — float32 zero :class:`EncoderState` for newly
      opened sessions,
    * :meth:`step_pairs` — the batched incremental GRU step
      (float32 twin of :meth:`StateEncoder.step_pairs`),
    * :meth:`state_matrix` / :meth:`act` — gather the per-session policy
      inputs into one float32 batch and run the deterministic actor forward.
    """

    def __init__(
        self, actor: GaussianActor, encoder: StateEncoder, max_batch: int = 16
    ) -> None:
        self.hidden_size = int(encoder.hidden_size)
        self.num_layers = int(encoder.num_layers)

        # Packed GRU cell weights, one (w_x, w_h, b) triple per layer.
        self._cells: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
            (
                np.ascontiguousarray(cell.w_x.data, dtype=np.float32),
                np.ascontiguousarray(cell.w_h.data, dtype=np.float32),
                np.ascontiguousarray(cell.b.data, dtype=np.float32),
            )
            for cell in encoder.gru._cells
        ]

        # The actor body as a flat op list; anything beyond Linear/Tanh/ReLU
        # has no float32 twin here and must fail at construction, not
        # mid-flush.
        self._mlp: List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray]]] = []
        for module in actor.body._ordered:
            if isinstance(module, Linear):
                self._mlp.append(
                    (
                        "linear",
                        np.ascontiguousarray(module.weight.data, dtype=np.float32),
                        None
                        if module.bias is None
                        else np.ascontiguousarray(module.bias.data, dtype=np.float32),
                    )
                )
            elif isinstance(module, Tanh):
                self._mlp.append(("tanh", None, None))
            elif isinstance(module, ReLU):
                self._mlp.append(("relu", None, None))
            else:
                raise TypeError(
                    f"float32 serving path cannot mirror actor module "
                    f"{type(module).__name__}; supported: Linear, Tanh, ReLU"
                )
        first_linear = next(w for kind, w, _ in self._mlp if kind == "linear")
        if first_linear.shape[0] != 2 * self.hidden_size:
            raise ValueError(
                f"actor expects state_dim={first_linear.shape[0]}, encoder "
                f"produces {2 * self.hidden_size}"
            )

        self._capacity = 0
        self._states: Optional[np.ndarray] = None
        self._ensure_capacity(max(1, int(max_batch)))

    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        self._capacity = n
        self._states = np.empty((n, 2 * self.hidden_size), dtype=np.float32)

    def initial_state(self) -> EncoderState:
        """Float32 zero state representing an empty history."""
        return EncoderState(
            hidden=np.zeros((self.num_layers, self.hidden_size), dtype=np.float32)
        )

    # ------------------------------------------------------------------ #
    def step_pairs(
        self, pairs: np.ndarray, states: Sequence[EncoderState]
    ) -> List[EncoderState]:
        """Fold one (size, delay) pair per session, entirely in float32.

        Semantics mirror :meth:`StateEncoder.step_pairs`; the gate math is
        the dtype-generic oracle evaluated on float32 operands, so the only
        difference from the float64 path is rounding.
        """
        x = np.ascontiguousarray(np.asarray(pairs), dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != 2:
            raise ValueError(f"expected (n, 2) pairs, got shape {x.shape}")
        if x.shape[0] != len(states):
            raise ValueError("one state per row of pairs is required")
        n = len(states)
        new_layers: List[np.ndarray] = []
        layer_input = x
        for layer, (w_x, w_h, b) in enumerate(self._cells):
            hidden = np.empty((n, self.hidden_size), dtype=np.float32)
            for row, state in enumerate(states):
                hidden[row] = state.hidden[layer]
            gx = layer_input @ w_x
            gh = hidden @ w_h
            new_hidden = _np_gru_gates(gx, gh, b, hidden)[0]
            new_layers.append(new_hidden)
            layer_input = new_hidden
        stacked = np.stack(new_layers)  # (num_layers, n, hidden)
        return [
            EncoderState(hidden=np.ascontiguousarray(stacked[:, row]))
            for row in range(n)
        ]

    # ------------------------------------------------------------------ #
    def state_matrix(self, sessions: Sequence) -> np.ndarray:
        """Gather ``s_t = E(x_1:t) || E(a_1:t)`` per session into one
        preallocated float32 batch (a view — consume before the next call)."""
        n = len(sessions)
        self._ensure_capacity(n)
        size = self.hidden_size
        out = self._states[:n]
        for row, session in enumerate(sessions):
            out[row, :size] = session.observation_state.hidden[-1]
            out[row, size:] = session.action_state.hidden[-1]
        return out

    def act(self, states: np.ndarray) -> np.ndarray:
        """Deterministic actor forward (the Gaussian mean) in float32.

        Returns float64 actions — the shaping emulator downstream is the
        same float64 code the training environment runs.
        """
        x = np.asarray(states, dtype=np.float32)
        for kind, weight, bias in self._mlp:
            if kind == "linear":
                x = x @ weight
                if bias is not None:
                    x = x + bias
            elif kind == "tanh":
                x = np.tanh(x)
            else:  # relu
                x = np.maximum(x, np.float32(0.0))
        return x.astype(np.float64)
