"""Serving worker: handler table around a :class:`PolicyServer`.

Same shared framed protocol as :mod:`repro.distrib.worker` — the loop
itself lives in :func:`repro.distrib.transport.worker_command_loop`; this
module supplies the serving command table:

=================== =========================== ===========================
command             payload                     reply
=================== =========================== ===========================
``open``            (session_id, kwargs)        ``("ok", None)``
``submit_many``     [(sid, size, delay), ...]   ``("result", n_decisions)``
``poll``            —                           ``("result", n_decisions)``
``drain``           —                           ``("result", n_decisions)``
``close_session``   session_id                  ``("result", SessionReport)``
``stats``           —                           ``("result", stats dict)``
``telemetry``       —                           ``("result", {"metrics", "spans"})``
``close``           —                           ``("ok", None)``, then exit
=================== =========================== ===========================

``telemetry`` drains (and zeroes) the worker's own metrics registry and
finished-span ring (``obs.take_worker_telemetry()``) so the driver can
fold per-worker serving telemetry — it never touches session state.

Exceptions inside a command come back as ``("error", traceback)`` so the
driver can re-raise them.  Unlike the rollout tier, serving sessions hold
live connection state that cannot be replayed from a seed tree, so a dead
serving worker — whatever transport carried it — is a hard error rather
than a restartable fault: the driver surfaces it and the operator's load
balancer is expected to re-open the affected flows elsewhere.
"""

from __future__ import annotations

import traceback
from typing import Callable, Dict

from ..distrib.transport import (
    ForkPipeTransport,
    Transport,
    TransportError,
    worker_command_loop,
)

__all__ = ["serve_handlers", "serve_worker_entry", "serve_worker_main"]


def serve_handlers(server) -> Dict[str, Callable[..., tuple]]:
    """The serving command table over one :class:`PolicyServer`."""

    def open_session(session_id: str, kwargs: dict) -> tuple:
        server.open_session(session_id, **kwargs)
        return ("ok", None)

    def submit_many(frame) -> tuple:
        for session_id, size, delay_ms in frame:
            server.submit(session_id, size, delay_ms)
        # The outbox is the single counting source: every command drains it,
        # so each decision is reported exactly once even though flush() both
        # returns decisions and outboxes them.
        return ("result", len(server.take_decisions()))

    def poll() -> tuple:
        server.poll()
        return ("result", len(server.take_decisions()))

    def drain() -> tuple:
        server.drain()
        return ("result", len(server.take_decisions()))

    def close_session(session_id: str) -> tuple:
        return ("result", server.close_session(session_id))

    def stats() -> tuple:
        return ("result", server.stats())

    def telemetry() -> tuple:
        from .. import obs

        return ("result", obs.take_worker_telemetry())

    return {
        "open": open_session,
        "submit_many": submit_many,
        "poll": poll,
        "drain": drain,
        "close_session": close_session,
        "stats": stats,
        "telemetry": telemetry,
    }


def serve_worker_entry(
    transport: Transport, server_factory: Callable[[int], object], worker_index: int
) -> None:
    """Transport-agnostic entry point of a serving worker."""
    try:
        server = server_factory(worker_index)
    except Exception:
        try:
            transport.send(("error", traceback.format_exc()))
        except TransportError:
            pass
        transport.close()
        return
    worker_command_loop(transport, serve_handlers(server))


def serve_worker_main(
    conn, server_factory: Callable[[int], object], worker_index: int
) -> None:
    """Forked-pipe entry point (kept for direct ``multiprocessing`` use)."""
    serve_worker_entry(ForkPipeTransport(conn), server_factory, worker_index)
