"""Serving worker process: command loop around a :class:`PolicyServer`.

Same framed-pipe pattern as :mod:`repro.distrib.worker`: workers are forked
(POSIX ``fork``), so the policy weights and configuration are inherited
copy-on-write, and driver and worker then speak a tiny command protocol over
a duplex pipe:

=================== =========================== ===========================
command             payload                     reply
=================== =========================== ===========================
``open``            (session_id, kwargs)        ``("ok", None)``
``submit_many``     [(sid, size, delay), ...]   ``("result", n_decisions)``
``poll``            —                           ``("result", n_decisions)``
``drain``           —                           ``("result", n_decisions)``
``close_session``   session_id                  ``("result", SessionReport)``
``stats``           —                           ``("result", stats dict)``
``telemetry``       —                           ``("result", obs snapshot)``
``close``           —                           ``("ok", None)``, then exit
=================== =========================== ===========================

``telemetry`` reads (and zeroes) the worker's own metrics registry so the
driver can fold per-worker serving metrics — it never touches session
state.

Exceptions inside a command are caught and returned as ``("error",
traceback)`` so the driver can re-raise them.  Unlike the rollout tier,
serving sessions hold live connection state that cannot be replayed from a
seed tree, so a crashed serving worker is a hard error rather than a
restartable fault — the driver surfaces it and the operator's load balancer
is expected to re-open the affected flows elsewhere.
"""

from __future__ import annotations

import traceback
from typing import Callable

__all__ = ["serve_worker_main"]


def serve_worker_main(conn, server_factory: Callable[[int], object], worker_index: int) -> None:
    """Entry point of a forked serving worker."""
    try:
        server = server_factory(worker_index)
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        try:
            if command == "open":
                session_id, kwargs = message[1], message[2]
                server.open_session(session_id, **kwargs)
                conn.send(("ok", None))
            elif command == "submit_many":
                for session_id, size, delay_ms in message[1]:
                    server.submit(session_id, size, delay_ms)
                # The outbox is the single counting source: every command
                # drains it, so each decision is reported exactly once even
                # though flush() both returns decisions and outboxes them.
                conn.send(("result", len(server.take_decisions())))
            elif command == "poll":
                server.poll()
                conn.send(("result", len(server.take_decisions())))
            elif command == "drain":
                server.drain()
                conn.send(("result", len(server.take_decisions())))
            elif command == "close_session":
                conn.send(("result", server.close_session(message[1])))
            elif command == "stats":
                conn.send(("result", server.stats()))
            elif command == "telemetry":
                from .. import obs

                conn.send(("result", obs.take_snapshot()))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown serve worker command {command!r}"))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    conn.close()
