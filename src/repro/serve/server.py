"""PolicyServer: online policy serving with continuous batching.

The deployment story of Section 5.6: a proxy pair shapes live tunnelled
flows with the trained policy, per packet, and must answer faster than the
inter-packet gaps (Figure 11) or fall back to the offline profile database
(Table 2).  The :class:`PolicyServer` is that online tier:

* it loads an actor/encoder checkpoint written by ``Amoeba.save_policy``
  (architecture inferred from the state-dict shapes, so any historical
  checkpoint serves without side-channel metadata);
* it manages thousands of concurrent flow **sessions**, each holding its own
  incremental :class:`~repro.core.state_encoder.EncoderState` pair so one
  per-packet decision costs one batched GRU step + one MLP forward;
* a :class:`~repro.serve.scheduler.ContinuousBatchScheduler` coalesces
  pending decisions across sessions into single ``act_batch`` /
  ``step_pairs`` forwards (flush on full batch or timeout);
* per-session deadline tracking demotes flows the online path cannot serve
  in time to the :class:`~repro.core.profiles.ProfileDatabase` offline tier,
  whose embedding overhead is reported per session at close.

Determinism contract: ``act_batch`` and ``step_pairs`` run under
:func:`repro.nn.row_consistent_matmul`, so every session's decision stream
is bit-identical regardless of how requests are batched — ``max_batch=1``
is the sequential reference the serving benchmark compares against, and a
deterministic policy served here emits the same adversarial packets as
``Amoeba.attack`` on the same flow.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.actor_critic import GaussianActor
from ..core.config import AmoebaConfig
from ..core.profiles import ProfileDatabase
from ..core.state_encoder import StateEncoder
from ..nn import backend as nn_backend
from ..nn.serialization import load_state_dict, split_prefixed_state
from ..obs import _state as _obs_state
from ..utils.rng import ensure_rng
from .fastpath import Float32ServingPath
from .scheduler import ContinuousBatchScheduler, DecisionRequest
from .session import (
    FlowSession,
    SessionLimits,
    SessionReport,
    SessionStatus,
    ShapingDecision,
)

__all__ = ["ServeConfig", "PolicyServer", "build_policy_from_state", "summarize_stats"]

# Distinguishes the registry series of multiple PolicyServer instances in
# one process (sharded serving workers each fork with their own count).
_SERVER_IDS = itertools.count()

# Every flush opens a ``serve.flush`` span; only every N-th also opens the
# per-phase child spans (see the head-sampling comment in ``flush``).
_TRACE_DETAIL_STRIDE = 8
_NULL_SPAN = obs.NULL_SPAN


@dataclass(frozen=True)
class ServeConfig:
    """Serving-tier configuration.

    The shaping bounds (``size_scale``, ``min_packet_bytes``,
    ``max_delay_ms``, ``max_truncations_per_packet``) must match the
    training-time :class:`~repro.core.config.AmoebaConfig` /
    :class:`~repro.features.representation.FlowNormalizer`; use
    :meth:`from_amoeba` to derive them.  ``deadline_ms`` is the per-decision
    latency budget (the Figure 11 inter-packet-delay argument): a session
    whose recent decisions miss it too often (``miss_threshold`` over a
    ``miss_window`` sliding window) is demoted to the offline profile tier.
    ``deadline_ms=None`` disables demotion (pure throughput serving).

    ``backend`` selects the :mod:`repro.nn.backend` execution backend the
    server's forwards run on (``None`` inherits the process default).  The
    row-consistent backends (``blocked``, ``reference``) preserve the
    bit-equivalence contract between serving and ``Amoeba.attack``; the
    ``float32`` backend trades that contract for raw speed and is therefore
    strictly opt-in.  A float32-dtype backend additionally swaps the server
    onto the end-to-end f32 session path
    (:class:`~repro.serve.fastpath.Float32ServingPath`): encoder state, gate
    activations and batch scratch stay in float32 between flushes, and
    served decisions agree with the float64 path to float32 rounding (same
    decision counts, emitted sizes/delays within a small relative tolerance,
    identical deadline/fallback behaviour under identical latencies — the
    documented accuracy contract, asserted in ``tests/test_serve.py``).
    """

    size_scale: float = 1460.0
    min_packet_bytes: int = 64
    max_delay_ms: float = 100.0
    max_truncations_per_packet: int = 8
    max_steps_per_session: Optional[int] = None

    max_batch: int = 16
    flush_timeout_ms: float = 2.0

    deadline_ms: Optional[float] = None
    miss_window: int = 8
    miss_threshold: float = 0.5

    # Recent decision latencies retained for stats()/percentiles.  Bounded:
    # a long-running server must not grow memory linearly in decisions
    # served (and stats() ships this window over worker pipes).
    latency_history: int = 4096

    # Execution backend for the server's matmul forwards; None inherits the
    # process-wide default (repro.nn.backend).
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.latency_history < 1:
            raise ValueError("latency_history must be >= 1")
        if self.backend is not None and self.backend not in nn_backend.available_backends():
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"available: {nn_backend.available_backends()}"
            )
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.miss_window < 1:
            raise ValueError("miss_window must be >= 1")
        if not 0.0 < self.miss_threshold <= 1.0:
            raise ValueError("miss_threshold must be in (0, 1]")

    @classmethod
    def from_amoeba(cls, config: AmoebaConfig, size_scale: float, **overrides) -> "ServeConfig":
        """Derive the serving bounds from a training configuration."""
        return cls(
            size_scale=float(size_scale),
            min_packet_bytes=config.min_packet_bytes,
            max_delay_ms=config.max_delay_ms,
            max_truncations_per_packet=config.max_truncations_per_packet,
            **overrides,
        )

    def with_overrides(self, **overrides) -> "ServeConfig":
        return replace(self, **overrides)

    def session_limits(self) -> SessionLimits:
        return SessionLimits(
            size_scale=self.size_scale,
            min_packet_bytes=self.min_packet_bytes,
            max_delay_ms=self.max_delay_ms,
            max_truncations_per_packet=self.max_truncations_per_packet,
            max_steps=self.max_steps_per_session,
        )


def build_policy_from_state(
    state: Dict[str, np.ndarray]
) -> Tuple[GaussianActor, StateEncoder]:
    """Reconstruct the actor and state encoder from a policy checkpoint.

    The combined ``actor.* / critic.* / encoder.*`` layout written by
    ``Amoeba.save_policy`` carries enough shape information to rebuild both
    serving-relevant modules without metadata: the encoder's hidden size and
    layer count from the packed GRU parameters, the actor's MLP widths from
    the ``body.layerK.weight`` matrices.  (The critic is training-only and
    ignored.)  Legacy per-gate checkpoints work too — ``load_state_dict``
    packs them before this function sees the arrays.
    """
    groups = split_prefixed_state(state)
    missing = {"actor", "encoder"} - set(groups)
    if missing:
        raise ValueError(f"checkpoint lacks required prefixes: {sorted(missing)}")

    encoder_state = groups["encoder"]
    cell_names = {key.split(".")[1] for key in encoder_state if key.startswith("gru.cell")}
    if not cell_names:
        raise ValueError("encoder state carries no gru.cell* parameters")
    num_layers = len(cell_names)
    hidden_size = int(np.asarray(encoder_state["gru.cell0.w_h"]).shape[0])
    encoder = StateEncoder(
        hidden_size=hidden_size, num_layers=num_layers, rng=np.random.default_rng(0)
    )
    encoder.load_state_dict(encoder_state)

    actor_state = groups["actor"]
    layer_indices = sorted(
        int(key.split(".")[1][len("layer"):])
        for key in actor_state
        if key.startswith("body.layer") and key.endswith(".weight")
    )
    if not layer_indices:
        raise ValueError("actor state carries no body.layer*.weight parameters")
    weights = [np.asarray(actor_state[f"body.layer{i}.weight"]) for i in layer_indices]
    state_dim = int(weights[0].shape[0])
    action_dim = int(weights[-1].shape[1])
    if state_dim != 2 * hidden_size:
        raise ValueError(
            f"checkpoint inconsistent: actor expects state_dim={state_dim}, "
            f"encoder produces {2 * hidden_size}"
        )
    actor = GaussianActor(
        state_dim=state_dim,
        action_dim=action_dim,
        hidden_dims=tuple(int(w.shape[1]) for w in weights[:-1]),
        rng=np.random.default_rng(0),
    )
    actor.load_state_dict(actor_state)
    encoder.eval()
    return actor, encoder


def summarize_stats(stats: Dict[str, object]) -> Dict[str, float]:
    """Percentile / rate summary of a :meth:`PolicyServer.stats` dict.

    Works on merged multi-shard stats too (latency lists concatenate).
    """
    latencies = np.asarray(stats.get("latencies_ms", ()), dtype=np.float64)
    opened = int(stats.get("sessions_opened", 0))
    decisions = int(stats.get("decisions", 0))
    overheads = list(stats.get("fallback_data_overheads", ()))
    embedded = list(stats.get("fallback_fully_embedded", ()))
    return {
        "decisions": float(decisions),
        "p50_latency_ms": float(np.percentile(latencies, 50)) if latencies.size else 0.0,
        "p99_latency_ms": float(np.percentile(latencies, 99)) if latencies.size else 0.0,
        "deadline_miss_rate": (
            float(stats.get("deadline_misses", 0)) / decisions if decisions else 0.0
        ),
        "profile_fallback_rate": (
            float(stats.get("sessions_demoted", 0)) / opened if opened else 0.0
        ),
        "fallback_data_overhead": float(np.mean(overheads)) if overheads else 0.0,
        "fallback_fully_embedded_rate": float(np.mean(embedded)) if embedded else 1.0,
    }


class PolicyServer:
    """Online serving tier: concurrent sessions + continuous batching.

    Parameters
    ----------
    actor, encoder:
        The policy being served (typically reconstructed from a checkpoint
        via :meth:`from_checkpoint`).  Decisions are deterministic (the
        Gaussian mean) — serving never explores.
    config:
        :class:`ServeConfig` shaping bounds and scheduler knobs.
    profile_db:
        Optional :class:`~repro.core.profiles.ProfileDatabase` backing the
        offline fallback tier.  Demoted sessions have their remaining
        payload embedded into stored profiles at close time; without a
        database demotion is still tracked (fallback rate), the embedding
        overhead just goes unreported.
    clock:
        Monotonic-seconds callable (injectable for deterministic tests).
    """

    def __init__(
        self,
        actor: GaussianActor,
        encoder: StateEncoder,
        config: Optional[ServeConfig] = None,
        profile_db: Optional[ProfileDatabase] = None,
        clock: Callable[[], float] = time.perf_counter,
        rng=None,
    ) -> None:
        self.actor = actor
        self.encoder = encoder
        self.config = config or ServeConfig()
        self.profile_db = profile_db
        self._clock = clock
        self._rng = ensure_rng(rng if rng is not None else 0)
        self._scheduler = ContinuousBatchScheduler(
            max_batch=self.config.max_batch,
            flush_timeout_ms=self.config.flush_timeout_ms,
        )
        # Resolve the configured backend eagerly so a bad name fails at
        # construction, not mid-flush.
        self._backend: Optional[nn_backend.ExecutionBackend] = (
            nn_backend.get_backend(self.config.backend)
            if self.config.backend is not None
            else None
        )
        # A float32-dtype backend opts the server into the end-to-end f32
        # session path: f32 weight snapshots + f32 per-session state, no
        # per-matmul widen-back.  Row-consistent backends keep the exact
        # Tensor path (and its bit-equivalence ladder).
        self._fastpath: Optional[Float32ServingPath] = (
            Float32ServingPath(actor, encoder, max_batch=self.config.max_batch)
            if self._backend is not None
            and self._backend.compute_dtype == np.float32
            else None
        )
        self._sessions: Dict[str, FlowSession] = {}
        self._session_counter = itertools.count()
        self._outbox: List[ShapingDecision] = []
        self._reports: List[SessionReport] = []

        # Aggregate counters (the stats() payload), registry-backed so the
        # telemetry exporters see them for free; the ``server`` label keeps
        # multiple in-process servers (sharded serving workers, tests)
        # distinguishable.  Demotions are not counted here: stats() derives
        # them from session/report status so the metric stays authoritative
        # however a session was demoted (deadline tracker or an operator
        # calling FlowSession.demote()).
        labels = {"server": str(next(_SERVER_IDS))}
        registry = obs.registry()
        self._sessions_opened = registry.counter("serve.sessions_opened", **labels)
        self._sessions_closed = registry.counter("serve.sessions_closed", **labels)
        self._decisions = registry.counter("serve.decisions", **labels)
        self._deadline_misses = registry.counter("serve.deadline_misses", **labels)
        self._flushes = registry.counter("serve.flushes", **labels)
        # Enabled-mode instruments (histograms/gauge are observed only when
        # telemetry is on; the counters above are always live because they
        # back the public stats() API).
        self._flush_size_hist = registry.histogram("serve.flush_size", **labels)
        self._latency_hist = registry.histogram("serve.decision_latency_ms", **labels)
        self._queue_depth_gauge = registry.gauge("serve.queue_depth", **labels)
        self._latencies_ms: Deque[float] = deque(maxlen=self.config.latency_history)
        self._flush_tick = 0  # drives child-span head sampling in flush()
        # Expose a scrape endpoint if REPRO_TELEMETRY_PORT asks for one
        # (no-op otherwise, and quietly skipped in serving workers that
        # inherited the variable — the driver owns the port).
        obs.maybe_serve_telemetry()

    # ------------------------------------------------------------------ #
    # Construction from a checkpoint
    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(
        cls,
        path,
        config: Optional[ServeConfig] = None,
        profile_db: Optional[ProfileDatabase] = None,
        clock: Callable[[], float] = time.perf_counter,
        rng=None,
    ) -> "PolicyServer":
        """Build a server from an ``Amoeba.save_policy`` checkpoint."""
        actor, encoder = build_policy_from_state(load_state_dict(path))
        return cls(
            actor, encoder, config=config, profile_db=profile_db, clock=clock, rng=rng
        )

    def _backend_scope(self):
        """Scoped backend override for the server's forwards (no-op if unset)."""
        if self._backend is None:
            return contextlib.nullcontext()
        return nn_backend.use_backend(self._backend.name)

    def _encode_step(self, pairs: np.ndarray, states) -> list:
        """One batched incremental GRU step on the configured substrate."""
        if self._fastpath is not None:
            return self._fastpath.step_pairs(pairs, states)
        with self._backend_scope():
            return self.encoder.step_pairs(pairs, states)

    def _act(self, live: Sequence[Tuple[DecisionRequest, FlowSession]]) -> np.ndarray:
        """Deterministic policy forward for one flush batch."""
        if self._fastpath is not None:
            states = self._fastpath.state_matrix([session for _, session in live])
            return self._fastpath.act(states)
        states = np.stack([session.state_vector() for _, session in live])
        with self._backend_scope():
            actions, _ = self.actor.act_batch(states, deterministic=True)
        return actions

    def backend_description(self) -> str:
        """Human-readable description of the backend the forwards run on."""
        backend = self._backend if self._backend is not None else nn_backend.active_backend()
        return backend.describe()

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    @property
    def pending_decisions(self) -> int:
        return self._scheduler.pending

    def session(self, session_id: str) -> FlowSession:
        return self._sessions[session_id]

    def open_session(
        self,
        session_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        protocol: str = "live",
    ) -> str:
        """Admit a new flow; returns its session id.

        ``deadline_ms`` overrides the server-wide decision deadline for this
        flow (e.g. its observed inter-packet gap); ``None`` inherits
        ``config.deadline_ms``.
        """
        if session_id is None:
            session_id = f"s{next(self._session_counter)}"
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already open")
        self._sessions[session_id] = FlowSession(
            session_id,
            self.encoder,
            self.config.session_limits(),
            deadline_ms=self.config.deadline_ms if deadline_ms is None else deadline_ms,
            miss_window=self.config.miss_window,
            miss_threshold=self.config.miss_threshold,
            protocol=protocol,
            state_dtype=np.float32 if self._fastpath is not None else np.float64,
        )
        self._sessions_opened.inc()
        return session_id

    def submit(self, session_id: str, size: float, delay_ms: float) -> None:
        """Offer one original packet of a live flow for shaping.

        Enqueues a decision request when the session is idle; a full queue
        triggers an immediate flush (the batch-size admission rule), while
        timeout-based flushing happens in :meth:`poll`.
        """
        session = self._sessions[session_id]
        session.enqueue(size, delay_ms)
        if session.arm_next():
            self._scheduler.submit(
                DecisionRequest(session_id=session_id, enqueued_at=self._clock())
            )
        if self._scheduler.pending >= self.config.max_batch:
            self.flush()

    def close_session(self, session_id: str) -> SessionReport:
        """Close a flow: drain nothing, drop pending work, embed fallbacks."""
        session = self._sessions.pop(session_id)
        self._scheduler.drop_session(session_id)
        if session.status != SessionStatus.CLOSED:
            payload = session.profile_payload()
            if payload is not None and self.profile_db is not None and len(self.profile_db):
                session.profile_result = self.profile_db.embed_flow(payload, rng=self._rng)
        report = session.close()
        self._sessions_closed.inc()
        self._reports.append(report)
        return report

    def close_all(self) -> List[SessionReport]:
        """Drain pending decisions, then close every remaining session."""
        self.drain()
        return [self.close_session(sid) for sid in list(self._sessions)]

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def poll(self) -> List[ShapingDecision]:
        """Flush if the batch is full or the oldest request timed out."""
        if self._scheduler.ready(self._clock()):
            return self.flush()
        return []

    def drain(self) -> List[ShapingDecision]:
        """Flush until no decision is pending (end-of-run barrier)."""
        decisions: List[ShapingDecision] = []
        while self._scheduler.pending:
            decisions.extend(self.flush())
        return decisions

    def take_decisions(self) -> List[ShapingDecision]:
        """Decisions accumulated since the last call (streaming consumers)."""
        outbox, self._outbox = self._outbox, []
        return outbox

    def flush(self) -> List[ShapingDecision]:
        """Serve one batch: fold observations, one actor forward, apply.

        The whole batch shares one ``step_pairs`` call per encoder stream
        and one deterministic ``act_batch`` forward; row-consistent matmuls
        make each session's row independent of the batch composition.
        """
        telemetry = _obs_state.enabled
        batch = self._scheduler.take_batch()
        # Sessions may have left the online tier (demotion, close) between
        # enqueue and flush; their requests are dropped silently.
        live: List[Tuple[DecisionRequest, FlowSession]] = [
            (request, self._sessions[request.session_id])
            for request in batch
            if request.session_id in self._sessions
        ]
        live = [
            (request, session)
            for request, session in live
            if session.online and session.in_flight
        ]
        if not live:
            return []
        self._flushes.inc()
        if telemetry:
            self._flush_size_hist.observe(len(live))
        # Child-span head sampling: the parent ``serve.flush`` span times
        # every flush, but the per-phase children (fold/act/apply) open only
        # on every ``_TRACE_DETAIL_STRIDE``-th flush — a sub-millisecond
        # flush cannot afford three extra spans each time, and one detailed
        # trace per stride answers "where does a flush spend its time" just
        # as well.  Deterministic (a flush counter, no RNG), so sampling
        # never perturbs a seeded stream.
        self._flush_tick += 1
        detailed = telemetry and self._flush_tick % _TRACE_DETAIL_STRIDE == 0
        with obs.span("serve.flush", batch=len(live)):
            # 1) Fold the newly armed observations (one batched GRU step).
            fold_rows = [
                row
                for row, (_, session) in enumerate(live)
                if session.observation_pending_fold
            ]
            if fold_rows:
                with obs.span("serve.fold", rows=len(fold_rows)) if detailed else _NULL_SPAN:
                    observations = np.stack(
                        [live[row][1].current_observation() for row in fold_rows]
                    )
                    folded = self._encode_step(
                        observations,
                        [live[row][1].observation_state for row in fold_rows],
                    )
                    for row, state in zip(fold_rows, folded):
                        live[row][1].mark_observation_folded(state)

            # 2) One deterministic policy forward for the whole batch.
            with obs.span("serve.act") if detailed else _NULL_SPAN:
                actions = self._act(live)

            # 3+4) Apply actions through the per-session emulator, then fold
            # the emitted actions (one batched GRU step).  One span covers
            # both: the action fold is part of committing the decision.
            with obs.span("serve.apply") if detailed else _NULL_SPAN:
                now = self._clock()
                decisions: List[ShapingDecision] = []
                for row, (request, session) in enumerate(live):
                    latency_ms = max(0.0, (now - request.enqueued_at) * 1000.0)
                    decision = session.apply_action(actions[row], latency_ms=latency_ms)
                    decisions.append(decision)
                    self._decisions.inc()
                    self._latencies_ms.append(decision.latency_ms)
                    if telemetry:
                        self._latency_hist.observe(decision.latency_ms)
                    if decision.deadline_missed:
                        self._deadline_misses.inc()

                recorded = np.stack([decision.recorded_action for decision in decisions])
                folded_actions = self._encode_step(
                    recorded, [session.action_state for _, session in live]
                )
                for (_, session), state in zip(live, folded_actions):
                    session.mark_action_folded(state)

            # 5) Re-arm follow-up work: truncation remainders continue the same
            #    packet; completed packets pull the next one from the backlog.
            requeue_at = self._clock()
            for _, session in live:
                if not session.online:
                    continue
                if session.in_flight or session.arm_next():
                    self._scheduler.submit(
                        DecisionRequest(
                            session_id=session.session_id, enqueued_at=requeue_at
                        )
                    )
        if telemetry:
            self._queue_depth_gauge.set(self._scheduler.pending)
        self._outbox.extend(decisions)
        return decisions

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Raw counters (mergeable across shards; see :func:`summarize_stats`).

        Scalars sum and lists concatenate under a multi-shard merge, which
        is why the fallback embedding results are shipped as raw per-result
        lists rather than pre-averaged rates (averages of averages would
        weight empty shards).  ``latencies_ms`` is the recent window of
        ``config.latency_history`` decisions, so long-running servers keep
        stats() cheap; the counters cover the full lifetime.
        """
        profile_results = [
            report.profile_result
            for report in self._reports
            if report.profile_result is not None
        ]
        demoted = sum(1 for report in self._reports if report.demoted) + sum(
            1
            for session in self._sessions.values()
            if session.status == SessionStatus.DEMOTED
        )
        return {
            "sessions_opened": int(self._sessions_opened.value),
            "sessions_closed": int(self._sessions_closed.value),
            "sessions_demoted": demoted,
            "sessions_live": len(self._sessions),
            "decisions": int(self._decisions.value),
            "deadline_misses": int(self._deadline_misses.value),
            "flushes": int(self._flushes.value),
            "latencies_ms": list(self._latencies_ms),
            "fallback_data_overheads": [r.data_overhead for r in profile_results],
            "fallback_fully_embedded": [bool(r.fully_embedded) for r in profile_results],
        }

    def reports(self) -> List[SessionReport]:
        return list(self._reports)
