"""Continuous-batching scheduler for per-packet policy decisions.

vLLM-style dynamic batching for the serving tier: pending decision requests
from many flow sessions coalesce into single ``act_batch`` forwards.  A
flush happens when the queue reaches ``max_batch`` or the oldest pending
request has waited ``flush_timeout_ms`` (whichever first); sessions whose
packets arrive mid-flight simply join the next batch, so the batch
composition changes continuously with the arrival process.

The scheduler is deliberately policy-free: it only decides *when* to flush
and *which* requests form the batch.  Because all policy and encoder
forwards run under :func:`repro.nn.row_consistent_matmul`, a session's
decisions are bit-identical regardless of which batch its requests land in
— ``max_batch=1`` degenerates to the sequential one-session-at-a-time
reference path that ``benchmarks/bench_throughput_serving.py`` compares
against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = ["DecisionRequest", "ContinuousBatchScheduler"]


@dataclass(frozen=True)
class DecisionRequest:
    """One pending per-packet decision for one session."""

    session_id: str
    enqueued_at: float  # server-clock seconds, for latency / timeout tracking


class ContinuousBatchScheduler:
    """FIFO request queue with batch-size and timeout flush triggers.

    Invariants:

    * at most one pending request per session (a follow-up truncation
      decision is only created once the previous decision was applied);
    * requests are served strictly FIFO, so a session's decisions happen in
      arrival order and no session starves;
    * ``take_batch`` never returns more than ``max_batch`` requests.
    """

    def __init__(self, max_batch: int = 16, flush_timeout_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_timeout_ms < 0:
            raise ValueError("flush_timeout_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.flush_timeout_ms = float(flush_timeout_ms)
        self._queue: Deque[DecisionRequest] = deque()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(self, request: DecisionRequest) -> None:
        self._queue.append(request)

    def oldest_age_ms(self, now: float) -> Optional[float]:
        """Age of the oldest pending request, or None when queue is empty."""
        if not self._queue:
            return None
        return (now - self._queue[0].enqueued_at) * 1000.0

    def ready(self, now: float) -> bool:
        """Should the server flush? (full batch, or the oldest waited enough)."""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        age = self.oldest_age_ms(now)
        return age is not None and age >= self.flush_timeout_ms

    def take_batch(self) -> List[DecisionRequest]:
        """Pop up to ``max_batch`` requests, FIFO."""
        batch: List[DecisionRequest] = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        return batch

    def drop_session(self, session_id: str) -> int:
        """Remove pending requests of a session (demotion / close); returns count."""
        kept = [request for request in self._queue if request.session_id != session_id]
        dropped = len(self._queue) - len(kept)
        if dropped:
            self._queue = deque(kept)
        return dropped
