"""Per-flow serving session: incremental state + the online shaping emulator.

A :class:`FlowSession` is the serving-tier counterpart of one
:class:`~repro.core.env.AdversarialFlowEnv` episode: it owns the two
incremental :class:`~repro.core.state_encoder.EncoderState` streams
(observation history and action history) of one live tunnelled flow, so a
per-packet policy decision costs one batched GRU step instead of re-encoding
the whole history (the PR 1 O(T) contract, now spent on inference serving).

The deterministic shaping rules — truncation / padding / minimum packet
size / per-packet truncation cap / step budget — are the *same code* the
training emulator runs (:func:`repro.core.env.shape_packet`), minus
everything reward- or censor-related (a proxy shaping live traffic never
sees the censor's verdict).  Driving a session with a deterministic policy
therefore emits bit-identical adversarial packets to :meth:`Amoeba.attack`
on the same flow, which is asserted in ``tests/test_serve.py``.

Sessions also carry the latency bookkeeping of the paper's deployment
argument (Section 5.6, Figure 11): every decision is stamped with the time
from request to answer, and a sliding window of deadline misses demotes the
session to the offline :class:`~repro.core.profiles.ProfileDatabase` tier
when the online path cannot beat the flow's inter-packet-delay budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.env import make_observation, record_action, shape_packet
from ..core.profiles import ProfileEmbeddingResult
from ..core.state_encoder import EncoderState, StateEncoder
from ..flows.flow import Flow, FlowLabel

__all__ = [
    "SessionStatus",
    "SessionLimits",
    "PendingPacket",
    "ShapingDecision",
    "SessionReport",
    "FlowSession",
]


class SessionStatus:
    """Lifecycle states of a serving session."""

    OPEN = "open"          # online tier: per-packet policy inference
    DEMOTED = "demoted"    # offline tier: payload embedded into profiles
    CLOSED = "closed"


@dataclass(frozen=True)
class SessionLimits:
    """Deterministic shaping bounds, mirroring the training-time emulator.

    ``min_packet_bytes`` / ``max_delay_ms`` / ``max_truncations_per_packet``
    must match the :class:`~repro.core.config.AmoebaConfig` the policy was
    trained with, otherwise the served action semantics drift from the
    training distribution.  ``max_steps`` bounds the number of decisions a
    session may take (``None`` = unbounded live stream); when set it mirrors
    ``max_episode_steps``: the step *before* the budget force-closes the
    current packet with padding, and reaching the budget closes the session.
    """

    size_scale: float
    min_packet_bytes: int = 64
    max_delay_ms: float = 100.0
    max_truncations_per_packet: int = 8
    max_steps: Optional[int] = None


@dataclass(frozen=True)
class PendingPacket:
    """One original (payload) packet waiting to be shaped."""

    size: float      # signed bytes (positive upstream, negative downstream)
    delay_ms: float  # original inter-packet delay


@dataclass(frozen=True)
class ShapingDecision:
    """One emitted adversarial packet (the answer to one decision request)."""

    session_id: str
    step: int
    kind: str                 # ActionKind.TRUNCATION / PADDING / "exact"
    emitted_size: float       # signed bytes actually sent on the wire
    emitted_delay_ms: float   # original + policy-added delay
    recorded_action: np.ndarray = field(repr=False)
    latency_ms: float = 0.0
    deadline_missed: bool = False


@dataclass(frozen=True)
class SessionReport:
    """Final accounting of one closed session."""

    session_id: str
    status: str
    demoted: bool
    n_decisions: int
    n_packets_in: int
    payload_bytes: float
    emitted_bytes: float
    added_delay_ms: float
    deadline_misses: int
    # The emitted adversarial packets; None when the session closed before
    # any decision was served (a flow must contain at least one packet).
    shaped_flow: Optional[Flow]
    profile_result: Optional[ProfileEmbeddingResult] = None
    unserved_packets: int = 0

    @property
    def data_overhead(self) -> float:
        """padding / (payload + padding), as in Section 5.3."""
        padding = max(0.0, self.emitted_bytes - self.payload_bytes)
        denominator = self.payload_bytes + padding
        return float(padding / denominator) if denominator > 0 else 0.0


class FlowSession:
    """Serving state of one live tunnelled flow.

    The session is driven by the :class:`~repro.serve.server.PolicyServer`:
    packets arrive via :meth:`enqueue`, decision requests are armed via
    :meth:`arm_next`, and the scheduler's flush applies the policy action via
    :meth:`apply_action`.  Encoder-state folding is owned by the server so it
    can batch GRU steps across sessions; the session only stores the states.
    """

    def __init__(
        self,
        session_id: str,
        encoder: StateEncoder,
        limits: SessionLimits,
        deadline_ms: Optional[float] = None,
        miss_window: int = 8,
        miss_threshold: float = 0.5,
        protocol: str = "live",
        state_dtype=np.float64,
    ) -> None:
        self.session_id = session_id
        self.limits = limits
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)
        self.miss_threshold = float(miss_threshold)
        self.status = SessionStatus.OPEN
        self.protocol = protocol

        # Incremental dual-stream encoder state (s_t = E(x_1:t) || E(a_1:t)).
        # ``state_dtype`` is float64 everywhere except under the server's
        # opt-in float32 end-to-end path, which keeps session state in f32
        # between flushes.
        self.observation_state: EncoderState = encoder.initial_state(dtype=state_dtype)
        self.action_state: EncoderState = encoder.initial_state(dtype=state_dtype)

        # Emulator state of the packet currently being shaped.
        self._inbox: Deque[PendingPacket] = deque()
        self._direction = 0.0
        self._remaining_bytes = 0.0
        self._base_delay = 0.0
        self._truncations_current_packet = 0
        self._steps = 0
        self._observation_armed = False  # current packet's obs awaiting fold

        # Emitted adversarial packets and accounting.  Latencies are kept
        # as a bounded recent window — sessions may serve unbounded live
        # streams, and aggregate percentiles live server-side.
        self._out_sizes: List[float] = []
        self._out_delays: List[float] = []
        self._payload_consumed = 0.0
        self._added_delay_total = 0.0
        self._n_decisions = 0
        self._n_packets_in = 0
        self._deadline_misses = 0
        self._recent_misses: Deque[bool] = deque(maxlen=max(1, int(miss_window)))
        self._latencies_ms: Deque[float] = deque(maxlen=256)

        # Offline-tier payload (packets that arrived after demotion).
        self._profile_sizes: List[float] = []
        self._profile_delays: List[float] = []
        self.profile_result: Optional[ProfileEmbeddingResult] = None

    # ------------------------------------------------------------------ #
    # Packet intake
    # ------------------------------------------------------------------ #
    @property
    def online(self) -> bool:
        return self.status == SessionStatus.OPEN

    @property
    def closed(self) -> bool:
        return self.status == SessionStatus.CLOSED

    @property
    def in_flight(self) -> bool:
        """A packet is currently being shaped (decision pending)."""
        return self._remaining_bytes > 0 or self._observation_armed

    @property
    def backlog(self) -> int:
        return len(self._inbox)

    @property
    def n_decisions(self) -> int:
        return self._n_decisions

    @property
    def deadline_misses(self) -> int:
        return self._deadline_misses

    @property
    def latencies_ms(self) -> List[float]:
        return list(self._latencies_ms)

    def enqueue(self, size: float, delay_ms: float) -> None:
        """Accept one original packet for shaping (or profile fallback).

        A zero-size packet is rejected at this ingestion boundary (the sign
        encodes direction, exactly as in the :class:`~repro.flows.flow.Flow`
        model); letting one through would arm a payload-less decision that
        crashes mid-flush and disturbs its batch-mates.
        """
        if self.closed:
            raise RuntimeError(f"session {self.session_id!r} is closed")
        size = float(size)
        delay_ms = float(delay_ms)
        if size == 0.0:
            raise ValueError("packet size must be non-zero (sign encodes direction)")
        self._n_packets_in += 1
        if self.status == SessionStatus.DEMOTED:
            self._profile_sizes.append(size)
            self._profile_delays.append(delay_ms)
            return
        self._inbox.append(PendingPacket(size=size, delay_ms=delay_ms))

    def arm_next(self) -> bool:
        """Start shaping the next queued packet; True if a decision is now due.

        Mirrors the environment's per-packet reset: direction and remaining
        bytes come from the new packet, the original inter-packet delay is
        only charged on its first sub-packet.
        """
        if not self.online or self.in_flight or not self._inbox:
            return False
        packet = self._inbox.popleft()
        self._direction = float(np.sign(packet.size))
        self._remaining_bytes = float(abs(packet.size))
        self._base_delay = float(packet.delay_ms)
        self._truncations_current_packet = 0
        self._observation_armed = True
        return True

    # ------------------------------------------------------------------ #
    # Observation / action folding hooks (called by the server)
    # ------------------------------------------------------------------ #
    def current_observation(self) -> np.ndarray:
        """Normalised (size, delay) observation of the pending sub-packet.

        Delegates to :func:`repro.core.env.make_observation` — the same
        formula the training environment uses — with the original delay
        zeroed for follow-up sub-packets after a truncation.
        """
        base = 0.0 if self._truncations_current_packet > 0 else self._base_delay
        return make_observation(
            self._direction,
            self._remaining_bytes,
            base,
            self.limits.size_scale,
            self.limits.max_delay_ms,
        )

    @property
    def observation_pending_fold(self) -> bool:
        return self._observation_armed

    def mark_observation_folded(self, state: EncoderState) -> None:
        self.observation_state = state
        self._observation_armed = False

    def state_vector(self) -> np.ndarray:
        """Current policy input ``s_t = E(x_1:t) || E(a_1:t)``."""
        return np.concatenate(
            [self.observation_state.representation, self.action_state.representation]
        )

    # ------------------------------------------------------------------ #
    # Decision application (deterministic emulator, = env.propose)
    # ------------------------------------------------------------------ #
    def apply_action(
        self, action: np.ndarray, latency_ms: float = 0.0
    ) -> ShapingDecision:
        """Turn one policy action into the emitted adversarial packet.

        The shaping arithmetic is :func:`repro.core.env.shape_packet` — the
        *same* function the training emulator calls — so a deterministic
        policy served here emits the same packets
        :meth:`AdversarialFlowEnv.propose` would, bit for bit.
        """
        if not self.online:
            raise RuntimeError(f"session {self.session_id!r} is not online")
        if self._remaining_bytes <= 0:
            raise RuntimeError("no packet armed; call arm_next() first")
        limits = self.limits

        shaped = shape_packet(
            action,
            remaining_bytes=self._remaining_bytes,
            truncations_current_packet=self._truncations_current_packet,
            steps_taken=self._steps,
            size_scale=limits.size_scale,
            min_packet_bytes=limits.min_packet_bytes,
            max_delay_ms=limits.max_delay_ms,
            max_truncations_per_packet=limits.max_truncations_per_packet,
            max_steps=limits.max_steps,
        )
        emitted_bytes = shaped.emitted_bytes
        base_delay = 0.0 if self._truncations_current_packet > 0 else self._base_delay
        emitted_delay = base_delay + shaped.added_delay

        if shaped.is_truncation:
            self._remaining_bytes -= emitted_bytes
            self._payload_consumed += emitted_bytes
            self._truncations_current_packet += 1
            kind = "truncation"
            # The remainder is re-offered as the next observation (base
            # delay zero), exactly like the training emulator.
            self._observation_armed = True
        else:
            padding = emitted_bytes - self._remaining_bytes
            self._payload_consumed += self._remaining_bytes
            self._remaining_bytes = 0.0
            kind = "padding" if padding > 0 else "exact"

        recorded_action = record_action(
            self._direction, emitted_bytes, emitted_delay, limits.size_scale, limits.max_delay_ms
        )
        self._out_sizes.append(self._direction * emitted_bytes)
        self._out_delays.append(emitted_delay)
        self._added_delay_total += shaped.added_delay
        self._steps += 1
        self._n_decisions += 1

        missed = self._record_latency(latency_ms)
        decision = ShapingDecision(
            session_id=self.session_id,
            step=self._steps,
            kind=kind,
            emitted_size=self._direction * emitted_bytes,
            emitted_delay_ms=emitted_delay,
            recorded_action=recorded_action,
            latency_ms=float(latency_ms),
            deadline_missed=missed,
        )

        if limits.max_steps is not None and self._steps >= limits.max_steps:
            # Step budget exhausted: the session leaves the online tier with
            # whatever is still queued unserved (mirrors the episode cap).
            self.status = SessionStatus.CLOSED
        elif missed and self._should_demote():
            self.demote()
        return decision

    def mark_action_folded(self, state: EncoderState) -> None:
        self.action_state = state

    # ------------------------------------------------------------------ #
    # Deadline tracking and demotion
    # ------------------------------------------------------------------ #
    def _record_latency(self, latency_ms: float) -> bool:
        self._latencies_ms.append(float(latency_ms))
        if self.deadline_ms is None:
            return False
        missed = latency_ms > self.deadline_ms
        if missed:
            self._deadline_misses += 1
        self._recent_misses.append(missed)
        return missed

    def _should_demote(self) -> bool:
        window = self._recent_misses
        if window.maxlen is None or len(window) < window.maxlen:
            return False
        return float(np.mean(window)) >= self.miss_threshold

    def demote(self) -> None:
        """Fall back to the offline profile tier (Section 5.6.1).

        The online path stops: the unfinished packet remainder and every
        queued or future packet are routed to the profile payload, to be
        embedded into pre-stored adversarial shapes at close time.
        """
        if self.closed:
            raise RuntimeError(f"session {self.session_id!r} is closed")
        if self.status == SessionStatus.DEMOTED:
            return
        self.status = SessionStatus.DEMOTED
        if self._remaining_bytes > 0:
            self._profile_sizes.append(self._direction * self._remaining_bytes)
            self._profile_delays.append(0.0)
            self._remaining_bytes = 0.0
        self._observation_armed = False
        while self._inbox:
            packet = self._inbox.popleft()
            self._profile_sizes.append(packet.size)
            self._profile_delays.append(packet.delay_ms)

    def profile_payload(self) -> Optional[Flow]:
        """Payload awaiting offline embedding, as a flow (None when empty)."""
        if not self._profile_sizes:
            return None
        return Flow(
            sizes=np.asarray(self._profile_sizes, dtype=np.float64),
            delays=np.asarray(self._profile_delays, dtype=np.float64),
            label=FlowLabel.CENSORED,
            protocol=f"{self.protocol}-fallback",
        )

    # ------------------------------------------------------------------ #
    # Close
    # ------------------------------------------------------------------ #
    def close(self) -> SessionReport:
        """Finalise the session and return its accounting report."""
        demoted = self.status == SessionStatus.DEMOTED
        unserved = len(self._inbox) + (1 if self._remaining_bytes > 0 else 0)
        self.status = SessionStatus.CLOSED
        shaped = None
        if self._out_sizes:
            shaped = Flow(
                sizes=np.asarray(self._out_sizes, dtype=np.float64),
                delays=np.asarray(self._out_delays, dtype=np.float64),
                label=FlowLabel.CENSORED,
                protocol=f"{self.protocol}-adv",
                metadata={"session_id": self.session_id},
            )
        return SessionReport(
            session_id=self.session_id,
            status=SessionStatus.DEMOTED if demoted else SessionStatus.CLOSED,
            demoted=demoted,
            n_decisions=self._n_decisions,
            n_packets_in=self._n_packets_in,
            payload_bytes=float(self._payload_consumed),
            emitted_bytes=float(np.sum(np.abs(self._out_sizes))) if self._out_sizes else 0.0,
            added_delay_ms=float(self._added_delay_total),
            deadline_misses=self._deadline_misses,
            shaped_flow=shaped,
            profile_result=self.profile_result,
            unserved_packets=unserved,
        )
