"""Sharded policy serving: sessions partitioned across forked workers.

One :class:`PolicyServer` handles thousands of sessions, but a single
process only has one core's worth of GEMM throughput.
:class:`ShardedPolicyServer` scales out the same API by placing ``W``
serving workers through the :mod:`repro.distrib.transport` tier (local
forks by default — policy weights inherited copy-on-write — or TCP worker
hosts with ``transport="tcp://..."``) and routing each session to one
worker for its whole lifetime, so its incremental encoder state never
crosses a process boundary.  Sessions are assigned round-robin at open
time, which keeps the shards balanced under homogeneous load; packet
submissions are buffered per shard and shipped in ``submit_many`` frames to
amortise per-command round-trips.

Each worker runs its own continuous-batching scheduler over its session
subset — global batching across processes would serialise on the driver,
defeating the point.  The determinism contract survives sharding for the
same reason it survives batching: row-consistent forwards make every
session's decision stream independent of which process (and which batch)
served it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from .. import obs
from ..distrib.transport import TransportError, WorkerPool, make_worker_pool
from ..obs import _state as _obs_state
from .server import PolicyServer
from .session import SessionReport

__all__ = ["ShardedPolicyServer"]


class ShardedPolicyServer:
    """Drives ``W`` forked :class:`PolicyServer` replicas behind one API.

    Parameters
    ----------
    server_factory:
        ``server_factory(worker_index) -> PolicyServer``, executed inside
        the worker process (closures are fine under the default fork
        placement — ``fork`` never pickles them; explicit ``tcp://`` hosts
        need a picklable factory).
    n_workers:
        Number of serving workers (= session shards).
    submit_buffer:
        Packets buffered per shard before a ``submit_many`` frame is sent;
        larger values amortise per-command overhead at the cost of added
        queueing delay.  :meth:`poll` and :meth:`drain` always flush the
        buffers.
    transport:
        Worker placement spec (``None``/``"fork"``/``"tcp"``/
        ``"tcp://host:port,..."``) or a prebuilt
        :class:`~repro.distrib.transport.WorkerPool`.  Whatever the
        backend, a dead serving worker stays a *hard* error — sessions
        hold live state that no transport can replay.
    """

    def __init__(
        self,
        server_factory: Callable[[int], PolicyServer],
        n_workers: int,
        submit_buffer: int = 64,
        transport: Union[None, str, WorkerPool] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if submit_buffer < 1:
            raise ValueError("submit_buffer must be >= 1")
        self._pool = make_worker_pool(
            transport,
            "serve",
            server_factory,
            name_prefix="repro-serve-worker",
            daemon=True,
        )
        self._n_workers = n_workers
        self._submit_buffer = submit_buffer
        self._shard_of: Dict[str, int] = {}
        self._next_shard = 0
        self._poll_cursor = 0
        self._buffers: List[List[Tuple[str, float, float]]] = [[] for _ in range(n_workers)]
        self._closed = False
        self._decisions = 0
        # Monotonic time of each shard's last successful reply, surfaced as
        # worker_heartbeat_age_s in stats() (None before the first reply).
        self._last_heartbeat: List[Optional[float]] = [None] * n_workers

        self._processes = []
        self._conns = []
        for index in range(n_workers):
            endpoint = self._pool.launch(index)
            self._processes.append(endpoint.process)
            self._conns.append(endpoint.transport)

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def decisions_observed(self) -> int:
        """Decisions reported by workers so far (buffered frames excluded)."""
        return self._decisions

    def _ask(self, shard: int, message: tuple):
        if self._closed:
            raise RuntimeError("sharded server is closed")
        try:
            self._conns[shard].send_command(message)
            reply = self._conns[shard].recv()
        except TransportError as error:
            raise RuntimeError(
                f"serving worker {shard} died; its sessions are lost "
                "(serving state is not replayable)"
            ) from error
        self._last_heartbeat[shard] = time.monotonic()
        if reply[0] == "error":
            raise RuntimeError(f"serving worker {shard} failed:\n{reply[1]}")
        return reply[1]

    def _flush_buffer(self, shard: int) -> None:
        if self._buffers[shard]:
            frame, self._buffers[shard] = self._buffers[shard], []
            self._decisions += self._ask(shard, ("submit_many", frame))

    # ------------------------------------------------------------------ #
    # PolicyServer-compatible surface
    # ------------------------------------------------------------------ #
    def open_session(
        self,
        session_id: str,
        deadline_ms: Optional[float] = None,
        protocol: str = "live",
    ) -> str:
        if session_id in self._shard_of:
            raise ValueError(f"session {session_id!r} already open")
        shard = self._next_shard
        self._next_shard = (self._next_shard + 1) % self._n_workers
        self._flush_buffer(shard)
        self._ask(
            shard, ("open", session_id, {"deadline_ms": deadline_ms, "protocol": protocol})
        )
        self._shard_of[session_id] = shard
        return session_id

    def submit(self, session_id: str, size: float, delay_ms: float) -> None:
        shard = self._shard_of[session_id]
        self._buffers[shard].append((session_id, float(size), float(delay_ms)))
        if len(self._buffers[shard]) >= self._submit_buffer:
            self._flush_buffer(shard)

    def poll(self) -> int:
        """Service one shard (round-robin): ship its buffer, flush timeouts.

        Drivers call this per packet arrival; touching every shard per
        event would cost ``2·W`` pipe round-trips per packet and defeat the
        submit buffers entirely.  Round-robin bounds both buffered-packet
        and timed-out-batch staleness to ``n_workers`` polls, and
        :meth:`drain` remains the full barrier.
        """
        shard = self._poll_cursor
        self._poll_cursor = (self._poll_cursor + 1) % self._n_workers
        self._flush_buffer(shard)
        count = self._ask(shard, ("poll",))
        self._decisions += count
        return count

    def drain(self) -> int:
        """Ship every buffered packet and serve every pending decision."""
        count = 0
        for shard in range(self._n_workers):
            self._flush_buffer(shard)
            count += self._ask(shard, ("drain",))
        self._decisions += count
        return count

    def close_session(self, session_id: str) -> SessionReport:
        shard = self._shard_of.pop(session_id)
        self._flush_buffer(shard)
        return self._ask(shard, ("close_session", session_id))

    def close_all(self) -> List[SessionReport]:
        self.drain()
        return [self.close_session(sid) for sid in list(self._shard_of)]

    def stats(self) -> Dict[str, object]:
        """Merged raw counters across shards (see :func:`summarize_stats`).

        The raw stats layout makes the merge mechanical: scalar counters
        sum and per-item lists (latencies, fallback embedding results)
        concatenate, so derived rates computed by ``summarize_stats`` are
        correctly weighted however sessions were distributed.
        """
        merged: Dict[str, object] = {}
        for shard in range(self._n_workers):
            stats = self._ask(shard, ("stats",))
            for key, value in stats.items():
                if isinstance(value, list):
                    merged.setdefault(key, []).extend(value)
                else:
                    merged[key] = merged.get(key, 0) + value
            if _obs_state.enabled:
                # Fold this shard's metrics and spans into the driver's,
                # labelled by worker index (best effort, outside the merge
                # above: registry series are telemetry, not the stats API).
                try:
                    payload = self._ask(shard, ("__telemetry__",))
                except RuntimeError:
                    payload = None
                if payload:
                    obs.merge_worker_telemetry(payload, worker=shard)
        now = time.monotonic()
        merged["worker_heartbeat_age_s"] = [
            None if beat is None else now - beat for beat in self._last_heartbeat
        ]
        return merged

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.recv()
            except TransportError:
                pass
        self._closed = True
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._pool.close()

    def __enter__(self) -> "ShardedPolicyServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
