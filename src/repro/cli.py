"""Command-line interface for the Amoeba reproduction.

Provides a small operational surface for users who want to run the system
without writing Python:

* ``repro-amoeba generate`` — synthesise a Tor or V2Ray dataset and write it
  to JSONL;
* ``repro-amoeba evaluate-censors`` — train the selected censors and report
  detection accuracy/F1 on a held-out split;
* ``repro-amoeba attack`` — train Amoeba against one censor and report
  ASR / data overhead / time overhead (optionally saving the policy and the
  adversarial flows);
* ``repro-amoeba serve`` — load a saved policy and serve it to a synthetic
  live-traffic workload through the continuous-batching serving tier,
  reporting decisions/s, decision-latency percentiles and the
  profile-fallback rate;
* ``repro-amoeba telemetry`` — enable the :mod:`repro.obs` telemetry tier,
  run one tiny instrumented training iteration (or serving workload) and
  render the live summary: counters, gauges, latency histograms and the
  nested span trace, optionally exported as JSONL and/or Prometheus text;
* ``repro-amoeba backends`` — print the execution-backend diagnostic: which
  backends are registered, whether the compiled GEMM / fused-cell kernels
  loaded, the compile error if they did not, and the thread configuration;
* ``repro-amoeba worker-host`` — run the TCP worker-host daemon that donates
  this machine's cores to remote drivers (``attack --transport
  tcp://host:port`` places collection/serving/sweep workers here);
* ``repro-amoeba info`` — print the library version and experiment index.

Examples
--------
::

    repro-amoeba generate --dataset tor --flows 200 --output tor.jsonl
    repro-amoeba evaluate-censors --dataset tor --censors DT RF DF
    repro-amoeba attack --dataset tor --censor DF --timesteps 5000 --save-policy policy.npz
    repro-amoeba serve --policy policy.npz --sessions 64 --max-batch 16
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from . import __version__
from .eval import format_table
from .eval.metrics import classifier_detection_report
from .flows import save_dataset, save_flows_jsonl
from .pipeline import (
    CENSOR_NAMES,
    make_censor,
    prepare_experiment_data,
    train_amoeba,
    train_censors,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-amoeba",
        description="Amoeba (CoNEXT 2023) reproduction: adversarial RL against ML censorship.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesise a dataset and write it to JSONL")
    generate.add_argument("--dataset", choices=("tor", "v2ray"), default="tor")
    generate.add_argument("--flows", type=int, default=200, help="flows per class")
    generate.add_argument("--max-packets", type=int, default=60)
    generate.add_argument("--drop-rate", type=float, default=0.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help="output JSONL path")

    evaluate = subparsers.add_parser("evaluate-censors", help="train censors and report detection metrics")
    evaluate.add_argument("--dataset", choices=("tor", "v2ray"), default="tor")
    evaluate.add_argument("--flows", type=int, default=120)
    evaluate.add_argument("--max-packets", type=int, default=40)
    evaluate.add_argument("--censors", nargs="+", default=["DT", "RF"], choices=list(CENSOR_NAMES))
    evaluate.add_argument("--epochs", type=int, default=8)
    evaluate.add_argument("--seed", type=int, default=0)

    attack = subparsers.add_parser("attack", help="train Amoeba against a censor and evaluate it")
    attack.add_argument("--dataset", choices=("tor", "v2ray"), default="tor")
    attack.add_argument("--flows", type=int, default=120)
    attack.add_argument("--max-packets", type=int, default=40)
    attack.add_argument("--censor", default="DT", choices=list(CENSOR_NAMES))
    attack.add_argument("--timesteps", type=int, default=3000)
    attack.add_argument("--eval-flows", type=int, default=20)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard rollout collection across this many worker processes "
        "(0 = in-process; n_envs must divide evenly)",
    )
    attack.add_argument(
        "--pipeline",
        action="store_true",
        help="double-buffer sharded collection: overlap each PPO update with "
        "the next collect (requires --workers)",
    )
    attack.add_argument(
        "--transport",
        default=None,
        help="worker placement: 'fork' (default), 'tcp' (private loopback "
        "worker host), or 'tcp://host:port[,host:port...]' pointing at "
        "repro-amoeba worker-host daemons (requires --workers)",
    )
    attack.add_argument("--save-policy", default=None, help="path to save the trained policy (.npz)")
    attack.add_argument("--save-adversarial", default=None, help="path to save adversarial flows (JSONL)")
    attack.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="enable telemetry and serve /metrics, /spans and /healthz on "
        "this local port for the duration of the run (0 picks a free port; "
        "watch it with 'repro-amoeba top')",
    )

    serve = subparsers.add_parser(
        "serve", help="serve a saved policy to a synthetic live workload"
    )
    serve.add_argument("--policy", required=True, help="policy checkpoint (.npz) from attack --save-policy")
    serve.add_argument("--dataset", choices=("tor", "v2ray"), default="tor",
                       help="sets the size scale and the default traffic mix")
    serve.add_argument("--sessions", type=int, default=32, help="concurrent flow sessions")
    serve.add_argument("--max-packets", type=int, default=24, help="packets per flow (cap)")
    serve.add_argument("--arrival-rate", type=float, default=2000.0,
                       help="aggregate packet arrival rate of the schedule (packets/s)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="continuous-batching admission limit (1 = sequential reference)")
    serve.add_argument("--flush-timeout-ms", type=float, default=2.0,
                       help="flush a partial batch once its oldest request waited this long")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-decision latency budget; repeated misses demote a "
                       "session to the offline profile tier")
    serve.add_argument("--workers", type=int, default=0,
                       help="shard sessions across this many serving workers (0 = in-process)")
    serve.add_argument("--transport", default=None,
                       help="serving-worker placement: 'fork' (default), 'tcp', or "
                       "'tcp://host:port[,host:port...]' (requires --workers)")
    serve.add_argument("--backend", choices=("blocked", "reference", "float32"), default=None,
                       help="execution backend for policy forwards (default: process default; "
                       "float32 trades the serve/attack bit-equivalence contract for speed)")
    serve.add_argument("--profiles", default=None,
                       help="JSONL of successful adversarial flows seeding the fallback profile database")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="enable telemetry and serve /metrics, /spans and /healthz on "
        "this local port for the duration of the run (0 picks a free port; "
        "watch it with 'repro-amoeba top')",
    )

    telemetry = subparsers.add_parser(
        "telemetry",
        help="run one instrumented training iteration or serving flush and "
        "render the telemetry summary (metrics + span trace)",
    )
    telemetry.add_argument(
        "--mode", choices=("train", "serve"), default="train",
        help="profile one tiny training iteration or one serving workload"
    )
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument("--max-spans", type=int, default=60,
                           help="span-tree rows rendered in the summary")
    telemetry.add_argument("--trace-jsonl", default=None,
                           help="also dump the metric snapshot and span trace to this JSONL file")
    telemetry.add_argument("--prometheus", default=None,
                           help="also write a Prometheus text-exposition snapshot to this file")

    top = subparsers.add_parser(
        "top",
        help="live terminal view over a running driver's /metrics endpoint "
        "(start the driver with --telemetry-port or REPRO_TELEMETRY_PORT)",
    )
    top.add_argument(
        "--url", default=None,
        help="metrics endpoint to poll (default: built from --port)",
    )
    top.add_argument(
        "--port", type=int, default=None,
        help="local telemetry port to poll (shorthand for --url http://127.0.0.1:PORT/metrics)",
    )
    top.add_argument("--interval", type=float, default=1.0, help="seconds between scrapes")
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after this many scrapes (default: run until interrupted)",
    )

    subparsers.add_parser(
        "backends", help="print the execution-backend diagnostic (kernels, threads, fallbacks)"
    )

    worker_host = subparsers.add_parser(
        "worker-host",
        help="run the TCP worker-host daemon: accepts worker connections "
        "from remote drivers (train/serve/sweep --transport tcp://...)",
    )
    worker_host.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="host:port to listen on (port 0 picks a free port; bind "
        "0.0.0.0:PORT to accept remote drivers)",
    )

    subparsers.add_parser("info", help="print version and experiment index")
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    data = prepare_experiment_data(
        args.dataset,
        n_censored=args.flows,
        n_benign=args.flows,
        max_packets=args.max_packets,
        drop_rate=args.drop_rate,
        rng=args.seed,
    )
    path = save_dataset(data.dataset, args.output)
    print(f"wrote {len(data.dataset)} flows to {path}")
    print(f"summary: {data.dataset.summary()}")
    return 0


def _command_evaluate_censors(args: argparse.Namespace) -> int:
    data = prepare_experiment_data(
        args.dataset, n_censored=args.flows, n_benign=args.flows, max_packets=args.max_packets, rng=args.seed
    )
    censors = train_censors(data, names=args.censors, rng=args.seed + 1, epochs=args.epochs)
    rows = []
    for name, censor in censors.items():
        report = classifier_detection_report(censor, data.splits.test.flows)
        rows.append({"censor": name, "accuracy": report["accuracy"], "f1": report["f1"]})
    print(format_table(rows, columns=["censor", "accuracy", "f1"], title=f"Censor detection ({args.dataset})"))
    return 0


def _maybe_start_telemetry(args: argparse.Namespace) -> None:
    """Arm telemetry + the live service when ``--telemetry-port`` was given.

    Enabled *before* any engine/server construction so forked workers
    inherit the flag; the service itself lives in this driver process only.
    """
    port = getattr(args, "telemetry_port", None)
    if port is None:
        return
    from . import obs

    obs.enable()
    service = obs.serve_telemetry(port=port)
    print(f"telemetry: {service.url}/metrics (also /spans, /healthz)")


def _command_attack(args: argparse.Namespace) -> int:
    if args.pipeline and not args.workers:
        # Fail fast on the argument error, before the dataset build.
        raise SystemExit("--pipeline requires --workers (double-buffered sharded collection)")
    if args.transport and not args.workers:
        raise SystemExit("--transport requires --workers (it places worker processes)")
    _maybe_start_telemetry(args)
    data = prepare_experiment_data(
        args.dataset, n_censored=args.flows, n_benign=args.flows, max_packets=args.max_packets, rng=args.seed
    )
    censor = make_censor(args.censor, data, rng=args.seed + 1)
    censor.fit(data.splits.clf_train.flows)
    baseline = classifier_detection_report(censor, data.splits.test.flows)
    print(f"censor {args.censor}: accuracy={baseline['accuracy']:.3f} F1={baseline['f1']:.3f} (no attack)")

    agent = train_amoeba(
        censor,
        data,
        total_timesteps=args.timesteps,
        rng=args.seed + 2,
        workers=args.workers or None,
        pipeline=True if args.pipeline else None,
        transport=args.transport,
    )
    report = agent.evaluate(data.splits.test.censored_flows[: args.eval_flows])
    print(
        format_table(
            [
                {
                    "censor": args.censor,
                    "asr": report.attack_success_rate,
                    "data_overhead": report.data_overhead,
                    "time_overhead": report.time_overhead,
                    "training_queries": censor.query_count,
                }
            ],
            columns=["censor", "asr", "data_overhead", "time_overhead", "training_queries"],
            title=f"Amoeba vs {args.censor} ({args.dataset})",
        )
    )
    if args.save_policy:
        agent.save_policy(args.save_policy)
        print(f"policy saved to {args.save_policy}")
    if args.save_adversarial:
        path = save_flows_jsonl([r.adversarial_flow for r in report.results], args.save_adversarial)
        print(f"adversarial flows saved to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serving tier is optional for the other commands.
    from .core.profiles import ProfileDatabase
    from .flows import load_flows_jsonl
    from .serve import (
        PolicyServer,
        ServeConfig,
        ShardedPolicyServer,
        SyntheticWorkload,
        build_policy_from_state,
        run_workload,
    )
    from .nn.serialization import load_state_dict

    _maybe_start_telemetry(args)
    size_scale = 16384.0 if args.dataset == "v2ray" else 1460.0
    mix = (
        {"v2ray": 0.6, "https": 0.4}
        if args.dataset == "v2ray"
        else {"tor": 0.6, "https": 0.4}
    )
    config = ServeConfig(
        size_scale=size_scale,
        max_batch=args.max_batch,
        flush_timeout_ms=args.flush_timeout_ms,
        deadline_ms=args.deadline_ms,
        backend=args.backend,
    )
    if args.backend:
        print(f"execution backend: {args.backend}")
    profile_db = None
    if args.profiles:
        profile_flows = load_flows_jsonl(args.profiles)
        profile_db = ProfileDatabase()
        profile_db.add_flows(profile_flows)
        print(f"fallback profile database: {len(profile_db)} profiles from {args.profiles}")

    # Load once in the driver; forked workers inherit the weights
    # copy-on-write instead of re-reading the checkpoint.
    actor, encoder = build_policy_from_state(load_state_dict(args.policy))
    workload = SyntheticWorkload.generate(
        n_sessions=args.sessions,
        mix=mix,
        arrival_rate_pps=args.arrival_rate,
        max_packets=args.max_packets,
        rng=args.seed,
    )

    def make_server(_index: int = 0) -> PolicyServer:
        return PolicyServer(actor, encoder, config=config, profile_db=profile_db)

    if args.transport and not args.workers:
        raise SystemExit("--transport requires --workers (it places worker processes)")
    if args.workers:
        with ShardedPolicyServer(
            make_server, n_workers=args.workers, transport=args.transport
        ) as server:
            report = run_workload(server, workload)
    else:
        report = run_workload(make_server(), workload)

    print(
        format_table(
            [
                {
                    "sessions": report.n_sessions,
                    "packets": report.n_packets,
                    "decisions": report.decisions,
                    "decisions_per_s": report.decisions_per_s,
                    "p50_ms": report.p50_latency_ms,
                    "p99_ms": report.p99_latency_ms,
                    "fallback_rate": report.profile_fallback_rate,
                }
            ],
            columns=[
                "sessions",
                "packets",
                "decisions",
                "decisions_per_s",
                "p50_ms",
                "p99_ms",
                "fallback_rate",
            ],
            title=f"Policy serving ({args.dataset}, max_batch={args.max_batch}, "
            f"workers={args.workers or 'in-process'})",
        )
    )
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    """Profile one instrumented run and render the telemetry summary.

    ``--mode train`` runs one PPO iteration of a deliberately tiny agent
    (pre-built encoder, no pretraining) against a DT censor; ``--mode
    serve`` pushes a small synthetic workload through a PolicyServer.  Both
    enable telemetry for the duration, print :func:`repro.obs.summary_text`
    (metrics + nested span trace) and optionally export the trace as JSONL
    and/or a Prometheus text snapshot.
    """
    from . import obs

    obs.enable()
    obs.reset()
    try:
        if args.mode == "train":
            _telemetry_train_iteration(args.seed)
        else:
            _telemetry_serve_workload(args.seed)

        print(obs.summary_text(max_spans=args.max_spans))
        if args.trace_jsonl:
            with obs.JsonlSink(args.trace_jsonl) as sink:
                sink.write_metrics(obs.registry().snapshot())
                sink.write_spans(obs.tracer().records())
            print(f"trace written to {args.trace_jsonl}")
        if args.prometheus:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(obs.prometheus_text(obs.registry().snapshot()))
            print(f"prometheus snapshot written to {args.prometheus}")
    finally:
        obs.disable()
    return 0


def _telemetry_train_iteration(seed: int) -> None:
    """One instrumented PPO iteration on a tiny agent (no encoder pretraining)."""
    from .core.agent import Amoeba
    from .core.config import AmoebaConfig
    from .core.state_encoder import StateEncoder

    data = prepare_experiment_data("tor", n_censored=24, n_benign=24, max_packets=16, rng=seed)
    censor = make_censor("DT", data, rng=seed + 1)
    censor.fit(data.splits.clf_train.flows)
    config = AmoebaConfig(
        n_envs=2,
        rollout_length=16,
        update_epochs=2,
        n_minibatches=2,
        actor_hidden=(16,),
        critic_hidden=(16,),
        encoder_hidden=8,
        max_episode_steps=16,
    )
    encoder = StateEncoder(
        hidden_size=config.encoder_hidden,
        num_layers=config.encoder_layers,
        rng=np.random.default_rng(seed),
    )
    agent = Amoeba(censor, data.normalizer, config, rng=seed + 2, state_encoder=encoder)
    agent.train(
        data.splits.attack_train.censored_flows,
        total_timesteps=config.rollout_length * config.n_envs,
    )


def _telemetry_serve_workload(seed: int) -> None:
    """One instrumented serving workload on a small synthetic policy."""
    from .core.actor_critic import GaussianActor
    from .core.state_encoder import StateEncoder
    from .serve import PolicyServer, ServeConfig, SyntheticWorkload, run_workload

    rng = np.random.default_rng(seed)
    encoder = StateEncoder(hidden_size=8, num_layers=1, rng=rng)
    encoder.eval()
    actor = GaussianActor(state_dim=2 * 8, action_dim=2, hidden_dims=(16,), rng=rng)
    server = PolicyServer(actor, encoder, config=ServeConfig(max_batch=8))
    workload = SyntheticWorkload.generate(
        n_sessions=8, mix={"tor": 0.6, "https": 0.4}, arrival_rate_pps=2000.0,
        max_packets=12, rng=seed,
    )
    run_workload(server, workload)


def _command_backends(_: argparse.Namespace) -> int:
    """Execution-backend diagnostic: kernels, threads, fallback reasons.

    This is the operational surface for the one-time einsum-fallback warning:
    when the compiled kernel (or the fused-cell kernel) failed to build, the
    exact compiler/loader error is reproduced here.
    """
    from .nn import backend as nn_backend

    active = nn_backend.active_backend()
    print(f"registered backends: {', '.join(nn_backend.available_backends())}")
    print(f"default backend:     {nn_backend.default_backend().name}")
    print(f"active backend:      {active.name}")
    print(f"threads:             {nn_backend.num_threads()} "
          f"(REPRO_NN_THREADS; cpu_count={os.cpu_count()})")

    if nn_backend.compiled_kernel_available():
        print("rc-GEMM kernel:      compiled (threaded row-partitioned C extension)")
    else:
        print("rc-GEMM kernel:      einsum fallback (row-consistent, slower)")
        error = nn_backend.compiled_kernel_error()
        if error:
            print(f"  compile error: {error}")
    if nn_backend.fused_cells_available():
        print("fused-cell kernels:  compiled (gru_gates / lstm_gates)")
    else:
        print("fused-cell kernels:  numpy fallback")
        error = nn_backend.fused_cells_error()
        if error:
            print(f"  compile error: {error}")

    print("per-backend describe():")
    for name in nn_backend.available_backends():
        description = nn_backend.get_backend(name).describe()
        details = ", ".join(f"{key}={value}" for key, value in sorted(description.items()))
        print(f"  {name}: {details}")
    return 0


def _command_worker_host(args: argparse.Namespace) -> int:
    """Run the TCP worker-host daemon until interrupted.

    Each accepted connection is answered by a freshly forked worker process
    running the requested entrypoint (rollout / serve / sweep); the daemon
    itself holds no policy or experiment state, so one host serves any
    number of drivers in sequence or in parallel.
    """
    from .distrib.transport import WorkerHostServer

    host, _, port = args.bind.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--bind must look like host:port, got {args.bind!r}")
    server = WorkerHostServer(host, int(port))
    print(f"worker host listening on {server.address} (ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("worker host shutting down")
    finally:
        server.close()
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    if args.url and args.port is not None:
        raise SystemExit("--url and --port are mutually exclusive")
    url = args.url
    if url is None:
        if args.port is None:
            raise SystemExit("repro-amoeba top needs --url or --port")
        url = f"http://127.0.0.1:{args.port}/metrics"
    rendered = run_top(url, interval_s=args.interval, iterations=args.iterations)
    return 0 if rendered else 1


def _command_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} — reproduction of Amoeba (CoNEXT 2023)")
    print("experiments: see DESIGN.md (per-experiment index) and EXPERIMENTS.md (paper vs measured)")
    print(f"censoring classifiers: {', '.join(CENSOR_NAMES)}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "evaluate-censors": _command_evaluate_censors,
        "attack": _command_attack,
        "serve": _command_serve,
        "telemetry": _command_telemetry,
        "top": _command_top,
        "backends": _command_backends,
        "worker-host": _command_worker_host,
        "info": _command_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
