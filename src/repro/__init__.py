"""repro — reproduction of *Amoeba: Circumventing ML-supported Network
Censorship via Adversarial Reinforcement Learning* (CoNEXT 2023).

Subpackages
-----------
``repro.nn``
    Numpy autodiff neural-network substrate (PyTorch stand-in).
``repro.ml``
    Classical ML substrate (decision tree, random forest, SVM, metrics).
``repro.flows``
    Flow model, synthetic Tor/V2Ray/HTTPS generators, datasets and network
    conditions.
``repro.features``
    Statistical (166-d), CUMUL and sequence feature representations.
``repro.censors``
    The six censoring classifiers (DF, SDAE, LSTM, CUMUL, DT, RF) and the
    gateway that deploys them.
``repro.core``
    Amoeba itself: StateEncoder, adversarial environment, PPO, agent,
    profiles.
``repro.distrib``
    Distributed tier: sharded multi-process rollout collection with
    checkpoint broadcast, and the fault-tolerant sweep orchestrator.
``repro.serve``
    Serving tier: online policy serving with continuous batching, session
    management, deadline-driven profile fallback and a load generator.
``repro.attacks``
    White-box baselines (CW, NIDSGAN, BAP).
``repro.eval``
    Evaluation metrics, transferability, convergence curves and reporting.
"""

from . import attacks, censors, core, distrib, eval, features, flows, ml, nn, pipeline, serve, utils
from .core import AdversarialResult, Amoeba, AmoebaConfig, EvaluationReport
from .flows import Flow, FlowDataset, FlowLabel, build_tor_dataset, build_v2ray_dataset

__version__ = "1.0.0"

__all__ = [
    "nn",
    "ml",
    "flows",
    "features",
    "censors",
    "core",
    "attacks",
    "eval",
    "pipeline",
    "serve",
    "utils",
    "Amoeba",
    "AmoebaConfig",
    "AdversarialResult",
    "EvaluationReport",
    "Flow",
    "FlowLabel",
    "FlowDataset",
    "build_tor_dataset",
    "build_v2ray_dataset",
    "__version__",
]
