"""Adversarial network environment: transport-layer emulator + reward function.

This module implements Section 4.2 of the paper.  The environment reads
payload-sized "packets" from the original (censored) flow as a transport
layer would, hands them to the agent as observations, and turns the agent's
actions into adversarial packets:

* **truncation** — the adversarial packet is smaller than the remaining
  payload, so the remainder is re-offered as the next observation;
* **padding** — the adversarial packet is at least as large as the remaining
  payload; the excess bytes are dummy padding and the emulator moves on to
  the next original packet;
* **delay** — every action may add extra delay on top of the original
  inter-packet delay, satisfying constraint (2) by construction.

The payload constraint (1) is satisfied *by design*: a packet's payload is
only considered sent once the cumulative adversarial bytes cover it.

The reward combines the censor's decision on the adversarial prefix with the
data-overhead and time-overhead penalties:

    r(s_t, a_t) = r_adv − λ_d · p_data − λ_t · p_time.

Reward masking (Section 5.5.3) replaces ``r_adv`` with an "unknown" value
(0.5) with a configurable probability; masked steps do not query the censor,
which is how the paper counts "actual queries" in Figures 8 and 9.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..censors.base import CensorClassifier
from ..features.representation import FlowNormalizer
from ..flows.flow import Flow, FlowLabel
from ..utils.rng import ensure_rng
from .config import AmoebaConfig

__all__ = [
    "AdversarialFlowEnv",
    "EpisodeSummary",
    "ActionKind",
    "PendingStep",
    "ShapedPacket",
    "shape_packet",
    "make_observation",
    "record_action",
]


class ActionKind:
    """Labels for the per-step action analysis of Figure 14."""

    TRUNCATION = "truncation"
    PADDING = "padding"
    DELAY = "delay"


@dataclass(frozen=True)
class ShapedPacket:
    """Deterministic outcome of applying one policy action to the packet
    currently being shaped."""

    emitted_bytes: int    # unsigned bytes actually put on the wire
    added_delay: float    # policy-added delay in ms (integer-discretised)
    delay_action: float   # the clipped normalised delay component (time penalty)
    is_truncation: bool   # True: the remainder is re-offered as the next observation


def shape_packet(
    action: np.ndarray,
    remaining_bytes: float,
    truncations_current_packet: int,
    steps_taken: int,
    size_scale: float,
    min_packet_bytes: int,
    max_delay_ms: float,
    max_truncations_per_packet: int,
    max_steps: Optional[int],
) -> ShapedPacket:
    """The paper's truncation/padding/delay action semantics, in one place.

    Both the training emulator (:meth:`AdversarialFlowEnv.propose`) and the
    online serving tier (:meth:`repro.serve.session.FlowSession.apply_action`)
    call this function, which is what keeps served decisions bit-identical
    to training-time shaping: truncation when the requested packet is
    smaller than the remaining payload (unless the per-packet truncation
    cap or the step budget forces the packet closed), padding up to the
    requested size otherwise, integer byte / millisecond discretisation,
    and the ``min_packet_bytes`` floor.  ``max_steps`` may be ``None`` for
    an unbounded live stream.
    """
    action = np.asarray(action, dtype=np.float64).reshape(-1)
    if action.shape[0] != 2:
        raise ValueError(f"action must have 2 components, got {action.shape}")
    size_action = float(np.clip(action[0], -1.0, 1.0))
    delay_action = float(np.clip(action[1], 0.0, 1.0))

    requested_bytes = abs(int(size_action * size_scale))
    requested_bytes = max(min_packet_bytes, requested_bytes)
    added_delay = float(int(delay_action * max_delay_ms))

    force_close = truncations_current_packet >= max_truncations_per_packet or (
        max_steps is not None and steps_taken + 1 >= max_steps
    )
    is_truncation = requested_bytes < remaining_bytes and not force_close
    if is_truncation:
        emitted_bytes = requested_bytes
    else:
        emitted_bytes = max(requested_bytes, int(np.ceil(remaining_bytes)))
    return ShapedPacket(
        emitted_bytes=emitted_bytes,
        added_delay=added_delay,
        delay_action=delay_action,
        is_truncation=is_truncation,
    )


def make_observation(
    direction: float,
    remaining_bytes: float,
    base_delay: float,
    size_scale: float,
    max_delay_ms: float,
) -> np.ndarray:
    """Normalised (size, delay) observation of the pending (sub-)packet.

    Shared by the training environment and the serving tier so the policy
    input is one definition: signed remaining payload clipped to the size
    scale, original delay (zero for follow-up sub-packets) clipped to the
    delay bound.
    """
    return np.asarray(
        [
            np.clip(direction * remaining_bytes / size_scale, -1.0, 1.0),
            np.clip(base_delay / max_delay_ms, 0.0, 1.0),
        ],
        dtype=np.float64,
    )


def record_action(
    direction: float,
    emitted_bytes: float,
    emitted_delay: float,
    size_scale: float,
    max_delay_ms: float,
) -> np.ndarray:
    """Normalised record of the *emitted* adversarial packet.

    This is what enters the action-history encoder stream — shared between
    environment and serving tier for the same reason as
    :func:`make_observation`.
    """
    return np.asarray(
        [
            np.clip(direction * emitted_bytes / size_scale, -1.0, 1.0),
            np.clip(emitted_delay / max_delay_ms, 0.0, 1.0),
        ]
    )


@dataclass
class EpisodeSummary:
    """Statistics of one finished episode (one adversarial flow)."""

    adversarial_flow: Flow
    original_flow: Flow
    success: bool
    final_score: float
    data_overhead: float
    time_overhead: float
    n_truncations: int
    n_paddings: int
    n_delays: int
    n_steps: int
    episode_reward: float

    def action_counts(self) -> Dict[str, int]:
        return {
            ActionKind.TRUNCATION: self.n_truncations,
            ActionKind.PADDING: self.n_paddings,
            ActionKind.DELAY: self.n_delays,
        }


@dataclass
class PendingStep:
    """Deterministic outcome of :meth:`AdversarialFlowEnv.propose`.

    The environment's transition is fully determined by the action — the
    censor's score only shapes the *reward* — so a step can be split into a
    deterministic ``propose`` phase (emulator advance, masking draw, episode
    termination) and an ``apply`` phase that consumes externally computed
    censor scores.  ``flows_to_score`` lists what the censor must score for
    this step, in order: the adversarial prefix (unless the reward is
    masked), then the finished adversarial flow (when the episode ended).
    A vectorized driver gathers these across environments into one batched
    ``predict_scores`` call, preserving the exact one-query-per-flow
    accounting of the sequential path.
    """

    action_kind: str
    masked: bool
    done: bool
    data_penalty: float
    time_penalty: float
    recorded_action: np.ndarray
    next_observation: Optional[np.ndarray]
    prefix: Optional[Flow]
    adversarial: Optional[Flow]

    @property
    def flows_to_score(self) -> List[Flow]:
        flows = []
        if self.prefix is not None:
            flows.append(self.prefix)
        if self.adversarial is not None:
            flows.append(self.adversarial)
        return flows


class AdversarialFlowEnv:
    """Single-flow adversarial sequence-generation environment.

    Parameters
    ----------
    censor:
        Trained censoring classifier providing the (possibly masked) reward.
    normalizer:
        Maps between bytes/milliseconds and the normalised action space.
    config:
        :class:`AmoebaConfig` with reward coefficients and action bounds.
    flows:
        Pool of original (censored) flows; each ``reset`` picks the next one.
    rng:
        Seed or generator (flow order, reward masking).
    """

    def __init__(
        self,
        censor: CensorClassifier,
        normalizer: FlowNormalizer,
        config: AmoebaConfig,
        flows: Sequence[Flow],
        rng=None,
    ) -> None:
        if not flows:
            raise ValueError("the environment needs at least one flow to attack")
        self.censor = censor
        self.normalizer = normalizer
        self.config = config
        self._flows = list(flows)
        self._rng = ensure_rng(rng)
        self._flow_order: List[int] = []
        self._flow_cursor = 0

        # Episode state, initialised by reset().
        self._original: Optional[Flow] = None
        self._packet_index = 0
        self._remaining_bytes = 0.0
        self._truncations_current_packet = 0
        self._adversarial_sizes: List[float] = []
        self._adversarial_delays: List[float] = []
        self._observation_history: List[np.ndarray] = []
        self._action_history: List[np.ndarray] = []
        self._added_delay_total = 0.0
        self._consumed_payload = 0.0
        self._n_truncations = 0
        self._n_paddings = 0
        self._n_delays = 0
        self._episode_reward = 0.0
        self._steps = 0
        self._done = True
        self.last_summary: Optional[EpisodeSummary] = None

    # Attributes shared with the driver and identical in every process fork;
    # everything else in __dict__ is per-episode / per-stream mutable state
    # and belongs in a state snapshot.
    _STATIC_ATTRS = frozenset({"censor", "normalizer", "config", "_flows"})

    def state_snapshot(self) -> Dict[str, object]:
        """Picklable deep copy of all mutable episode and stream state.

        Covers the RNG stream, flow-order cursor and in-flight episode
        bookkeeping — everything needed to resume this environment
        bit-identically in another process (used by the sharded rollout
        engine's restart snapshots).  Static collaborators (censor,
        normalizer, config, flow pool) are excluded; the restoring side
        supplies its own identical copies.
        """
        return copy.deepcopy(
            {
                key: value
                for key, value in self.__dict__.items()
                if key not in self._STATIC_ATTRS
            }
        )

    def state_restore(self, snapshot: Dict[str, object]) -> None:
        """Inverse of :meth:`state_snapshot` (deep-copies, so the caller's
        snapshot survives this environment's subsequent mutations)."""
        self.__dict__.update(copy.deepcopy(snapshot))

    # ------------------------------------------------------------------ #
    # Flow pool management
    # ------------------------------------------------------------------ #
    def _next_flow(self) -> Flow:
        if self._flow_cursor >= len(self._flow_order):
            self._flow_order = self._rng.permutation(len(self._flows)).tolist()
            self._flow_cursor = 0
        flow = self._flows[self._flow_order[self._flow_cursor]]
        self._flow_cursor += 1
        return flow

    # ------------------------------------------------------------------ #
    # Observation helpers
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True when no episode is in flight (before the first :meth:`reset`
        or after the current episode terminated) — the public check drivers
        use to decide whether to reset before stepping."""
        return self._done

    @property
    def observation_dim(self) -> int:
        return 2

    @property
    def action_dim(self) -> int:
        return 2

    def _current_direction(self) -> float:
        assert self._original is not None
        return float(np.sign(self._original.sizes[self._packet_index]))

    def _current_base_delay(self) -> float:
        """Original delay of the current packet, only for its first sub-packet."""
        assert self._original is not None
        if self._truncations_current_packet > 0:
            return 0.0
        return float(self._original.delays[self._packet_index])

    def _make_observation(self) -> np.ndarray:
        return make_observation(
            self._current_direction(),
            self._remaining_bytes,
            self._current_base_delay(),
            self.normalizer.size_scale,
            self.config.max_delay_ms,
        )

    def observation_history(self) -> np.ndarray:
        """All observations of the current episode as an (t, 2) array."""
        if not self._observation_history:
            return np.zeros((0, 2))
        return np.vstack(self._observation_history)

    def action_history(self) -> np.ndarray:
        """All normalised actions of the current episode as a (t-1, 2) array."""
        if not self._action_history:
            return np.zeros((0, 2))
        return np.vstack(self._action_history)

    # ------------------------------------------------------------------ #
    # Gym-style API
    # ------------------------------------------------------------------ #
    def reset(self, flow: Optional[Flow] = None) -> np.ndarray:
        """Start a new episode, optionally on a caller-provided flow."""
        self._original = (flow or self._next_flow()).copy()
        self._packet_index = 0
        self._remaining_bytes = float(abs(self._original.sizes[0]))
        self._truncations_current_packet = 0
        self._adversarial_sizes = []
        self._adversarial_delays = []
        self._observation_history = []
        self._action_history = []
        self._added_delay_total = 0.0
        self._consumed_payload = 0.0
        self._n_truncations = 0
        self._n_paddings = 0
        self._n_delays = 0
        self._episode_reward = 0.0
        self._steps = 0
        self._done = False
        observation = self._make_observation()
        self._observation_history.append(observation)
        return observation

    def propose(self, action: np.ndarray) -> PendingStep:
        """Phase 1 of a step: advance the emulator, defer censor scoring.

        Applies the action's deterministic effects (packet emission, history
        bookkeeping, reward-masking draw, emulator advance, episode
        termination) and returns a :class:`PendingStep` naming the flows the
        censor still has to score.  Complete the step with :meth:`apply`.
        """
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset() first")
        assert self._original is not None

        size_scale = self.normalizer.size_scale
        shaped = shape_packet(
            action,
            remaining_bytes=self._remaining_bytes,
            truncations_current_packet=self._truncations_current_packet,
            steps_taken=self._steps,
            size_scale=size_scale,
            min_packet_bytes=self.config.min_packet_bytes,
            max_delay_ms=self.config.max_delay_ms,
            max_truncations_per_packet=self.config.max_truncations_per_packet,
            max_steps=self.config.max_episode_steps,
        )
        direction = self._current_direction()
        base_delay = self._current_base_delay()
        emitted_bytes = shaped.emitted_bytes
        emitted_delay = base_delay + shaped.added_delay

        if shaped.is_truncation:
            self._remaining_bytes -= emitted_bytes
            self._consumed_payload += emitted_bytes
            self._truncations_current_packet += 1
            self._n_truncations += 1
            data_penalty = (
                self._remaining_bytes / size_scale
                + self.config.lambda_split * self._truncations_current_packet
            )
            action_kind = ActionKind.TRUNCATION
        else:
            padding_bytes = emitted_bytes - self._remaining_bytes
            self._consumed_payload += self._remaining_bytes
            data_penalty = padding_bytes / size_scale
            if padding_bytes > 0:
                self._n_paddings += 1
                action_kind = ActionKind.PADDING
            else:
                action_kind = "exact"
            self._remaining_bytes = 0.0

        if shaped.added_delay >= 1.0:
            self._n_delays += 1

        # Record the emitted adversarial packet.
        recorded_action = record_action(
            direction, emitted_bytes, emitted_delay, size_scale, self.config.max_delay_ms
        )
        self._adversarial_sizes.append(direction * emitted_bytes)
        self._adversarial_delays.append(emitted_delay)
        self._added_delay_total += shaped.added_delay
        self._action_history.append(recorded_action)
        self._steps += 1

        # Reward masking (Section 5.5.3): masked steps never reach the censor.
        masked = (
            self.config.reward_mask_rate > 0.0
            and self._rng.random() < self.config.reward_mask_rate
        )
        prefix = None if masked else self._current_adversarial_flow()

        # Advance the emulator; termination does not depend on the score.
        done = False
        if self._remaining_bytes <= 0:
            self._packet_index += 1
            self._truncations_current_packet = 0
            if self._packet_index >= self._original.n_packets:
                done = True
            else:
                self._remaining_bytes = float(abs(self._original.sizes[self._packet_index]))
        if self._steps >= self.config.max_episode_steps:
            done = True

        if done:
            self._done = True
            adversarial = self._current_adversarial_flow()
            next_observation = None
        else:
            adversarial = None
            next_observation = self._make_observation()
            self._observation_history.append(next_observation)

        return PendingStep(
            action_kind=action_kind,
            masked=masked,
            done=done,
            data_penalty=data_penalty,
            time_penalty=shaped.delay_action,  # already normalised by max_delay
            recorded_action=recorded_action,
            next_observation=next_observation,
            prefix=prefix,
            adversarial=adversarial,
        )

    def apply(
        self, pending: PendingStep, scores: np.ndarray
    ) -> Tuple[np.ndarray, float, bool, Dict]:
        """Phase 2 of a step: fold censor scores into reward and summary.

        ``scores`` must align with ``pending.flows_to_score`` (possibly a
        slice of a batched :meth:`~repro.censors.base.CensorClassifier.predict_scores`
        result covering many environments).
        """
        scores = np.asarray(scores, dtype=np.float64).reshape(-1)
        expected = len(pending.flows_to_score)
        if len(scores) != expected:
            raise ValueError(f"expected {expected} scores for this step, got {len(scores)}")

        if pending.masked:
            adversarial_reward = self.config.masked_reward_value
            score = float("nan")
        else:
            score = float(scores[0])
            adversarial_reward = 1.0 if score >= 0.5 else 0.0

        reward = (
            adversarial_reward
            - self.config.lambda_data * pending.data_penalty
            - self.config.lambda_time * pending.time_penalty
        )
        self._episode_reward += reward

        info: Dict = {
            "action_kind": pending.action_kind,
            "masked": pending.masked,
            "score": score,
            "data_penalty": pending.data_penalty,
            "time_penalty": pending.time_penalty,
            "recorded_action": pending.recorded_action,
        }

        if pending.done:
            assert pending.adversarial is not None
            summary = self._finalise_episode(pending.adversarial, float(scores[-1]))
            info["episode"] = summary
            observation = np.zeros(2)
        else:
            assert pending.next_observation is not None
            observation = pending.next_observation

        return observation, float(reward), pending.done, info

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict]:
        """Apply an action (normalised size, normalised extra delay).

        Thin wrapper chaining :meth:`propose` and :meth:`apply` with an
        immediate censor query — the single-environment compatibility path.
        Query accounting is unchanged: one query for the prefix of every
        unmasked step plus one for the finished adversarial flow.
        """
        pending = self.propose(action)
        scores = self.censor.predict_scores(pending.flows_to_score)
        return self.apply(pending, scores)

    # ------------------------------------------------------------------ #
    # Episode bookkeeping
    # ------------------------------------------------------------------ #
    def _current_adversarial_flow(self) -> Flow:
        assert self._original is not None
        return Flow(
            sizes=np.asarray(self._adversarial_sizes),
            delays=np.asarray(self._adversarial_delays),
            label=self._original.label,
            protocol=f"{self._original.protocol}-adv",
            metadata={"original_packets": self._original.n_packets},
        )

    def _finalise_episode(self, adversarial: Flow, final_score: float) -> EpisodeSummary:
        assert self._original is not None
        success = final_score >= 0.5

        original_payload = float(self._consumed_payload)
        adversarial_bytes = float(np.abs(adversarial.sizes).sum())
        padding = max(0.0, adversarial_bytes - original_payload)
        data_overhead = padding / (original_payload + padding) if (original_payload + padding) > 0 else 0.0

        adversarial_duration = float(adversarial.delays.sum())
        time_overhead = (
            self._added_delay_total / adversarial_duration if adversarial_duration > 0 else 0.0
        )

        summary = EpisodeSummary(
            adversarial_flow=adversarial,
            original_flow=self._original,
            success=bool(success),
            final_score=float(final_score),
            data_overhead=float(data_overhead),
            time_overhead=float(time_overhead),
            n_truncations=self._n_truncations,
            n_paddings=self._n_paddings,
            n_delays=self._n_delays,
            n_steps=self._steps,
            episode_reward=float(self._episode_reward),
        )
        self.last_summary = summary
        return summary
