"""Rollout buffer and generalized advantage estimation (Appendix A.1).

PPO trains on fixed-length rollouts collected from ``N`` parallel
environments (Algorithm 1, line 4).  The buffer stores states, actions,
log-probabilities, rewards, value estimates and episode-boundary flags, and
computes advantages via GAE(λ):

    A_t = Σ_l (γλ)^l [ r_{t+l} + γ V(s_{t+l+1}) − V(s_{t+l}) ].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..utils.rng import ensure_rng

__all__ = ["RolloutBuffer", "MinibatchScratch", "compute_gae"]


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    last_values: np.ndarray,
    gamma: float,
    gae_lambda: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute GAE advantages and returns.

    Parameters
    ----------
    rewards, values, dones:
        Arrays of shape ``(T, N)`` — T timesteps, N environments.  ``dones``
        marks steps that *terminate* an episode.
    last_values:
        Value estimates of the state following the final step, shape ``(N,)``.

    Returns
    -------
    advantages, returns:
        Arrays of shape ``(T, N)``; returns are ``advantages + values``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    if rewards.shape != values.shape or rewards.shape != dones.shape:
        raise ValueError("rewards, values and dones must share the same (T, N) shape")
    steps, n_envs = rewards.shape
    advantages = np.zeros_like(rewards)
    last_advantage = np.zeros(n_envs)
    next_values = np.asarray(last_values, dtype=np.float64).reshape(n_envs)

    for t in reversed(range(steps)):
        non_terminal = 1.0 - dones[t].astype(np.float64)
        delta = rewards[t] + gamma * next_values * non_terminal - values[t]
        last_advantage = delta + gamma * gae_lambda * non_terminal * last_advantage
        advantages[t] = last_advantage
        next_values = values[t]

    returns = advantages + values
    return advantages, returns


@dataclass
class _Batch:
    """One minibatch handed to the PPO update."""

    states: np.ndarray
    actions: np.ndarray
    log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray


class MinibatchScratch:
    """Preallocated minibatch buffers reused across PPO update epochs.

    :meth:`RolloutBuffer.minibatches` gathers each minibatch with fancy
    indexing, which allocates five fresh arrays per minibatch per epoch —
    on the PPO update's critical path that is ``update_epochs ×
    n_minibatches × 5`` allocations per iteration for data whose shapes
    never change.  Passing a ``MinibatchScratch`` makes the buffer gather
    into preallocated per-slot arrays with ``np.take(..., out=...)``
    instead: the slot shapes are fixed by ``(total, n_minibatches)`` (the
    ``array_split`` partition is deterministic), so one scratch object
    serves every epoch of every update for a given configuration.  It also
    hosts the normalised-advantages buffer, letting the normalisation be
    computed once per epoch without a fresh allocation.

    The buffers are overwritten on each gather, so a batch is only valid
    until the next one is drawn — exactly the lifetime the PPO update loop
    needs (forward, backward and optimizer step complete before the next
    minibatch is requested).  A scratch sized for a different ``(total,
    n_minibatches)`` geometry is transparently rebuilt.
    """

    def __init__(self) -> None:
        self._geometry: Optional[Tuple[int, int, int, int]] = None
        self._slots: List[_Batch] = []
        self.advantages: Optional[np.ndarray] = None

    def prepare(
        self, total: int, n_minibatches: int, state_dim: int, action_dim: int
    ) -> List[_Batch]:
        """Return per-slot batch buffers for the given partition geometry."""
        geometry = (total, n_minibatches, state_dim, action_dim)
        if self._geometry != geometry:
            sizes = [len(split) for split in np.array_split(np.arange(total), n_minibatches)]
            self._slots = [
                _Batch(
                    states=np.empty((size, state_dim)),
                    actions=np.empty((size, action_dim)),
                    log_probs=np.empty(size),
                    advantages=np.empty(size),
                    returns=np.empty(size),
                )
                for size in sizes
            ]
            self.advantages = np.empty(total)
            self._geometry = geometry
        return self._slots


class RolloutBuffer:
    """Fixed-size (T × N) storage of environment interactions."""

    def __init__(self, rollout_length: int, n_envs: int, state_dim: int, action_dim: int) -> None:
        if rollout_length < 1 or n_envs < 1:
            raise ValueError("rollout_length and n_envs must be >= 1")
        self.rollout_length = rollout_length
        self.n_envs = n_envs
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.reset()

    def reset(self) -> None:
        shape = (self.rollout_length, self.n_envs)
        self.states = np.zeros(shape + (self.state_dim,))
        self.actions = np.zeros(shape + (self.action_dim,))
        self.log_probs = np.zeros(shape)
        self.rewards = np.zeros(shape)
        self.values = np.zeros(shape)
        self.dones = np.zeros(shape, dtype=bool)
        self._cursor = 0

    @property
    def full(self) -> bool:
        return self._cursor >= self.rollout_length

    def add(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        log_probs: np.ndarray,
        rewards: np.ndarray,
        values: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Append one timestep of data for all environments."""
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() before adding")
        index = self._cursor
        self.states[index] = states
        self.actions[index] = actions
        self.log_probs[index] = log_probs
        self.rewards[index] = rewards
        self.values[index] = values
        self.dones[index] = dones
        self._cursor += 1

    def load(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        log_probs: np.ndarray,
        rewards: np.ndarray,
        values: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Fill the whole buffer from pre-collected ``(T, N, ...)`` arrays.

        Used by the sharded rollout engine, whose workers return full
        per-shard segments: the merged arrays replace timestep-by-timestep
        :meth:`add` calls and leave the buffer ready for :meth:`finalize`.
        """
        expected = (self.rollout_length, self.n_envs)
        rewards = np.asarray(rewards, dtype=np.float64)
        if rewards.shape != expected:
            raise ValueError(f"rewards must have shape {expected}, got {rewards.shape}")
        self.states[:] = states
        self.actions[:] = actions
        self.log_probs[:] = log_probs
        self.rewards[:] = rewards
        self.values[:] = values
        self.dones[:] = dones
        self._cursor = self.rollout_length

    def finalize(self, last_values: np.ndarray, gamma: float, gae_lambda: float) -> None:
        """Compute advantages and returns once the buffer is full."""
        if not self.full:
            raise RuntimeError("cannot finalize a partially filled buffer")
        self.advantages, self.returns = compute_gae(
            self.rewards, self.values, self.dones, last_values, gamma, gae_lambda
        )

    def minibatches(
        self,
        n_minibatches: int,
        rng=None,
        normalise_advantages: bool = True,
        scratch: Optional[MinibatchScratch] = None,
    ) -> Iterator[_Batch]:
        """Yield shuffled minibatches over the flattened (T*N) samples.

        The ``T·N`` samples are partitioned into exactly ``n_minibatches``
        near-equal batches (sizes differ by at most one), so per-update
        statistics are never skewed by a runt batch when ``n_minibatches``
        does not divide ``T·N``.  When there are fewer samples than
        requested batches, each sample forms its own batch.

        ``scratch`` (a :class:`MinibatchScratch`) makes every gather write
        into preallocated buffers instead of allocating per minibatch; the
        yielded values are then only valid until the next minibatch is
        drawn.  Both paths consume the generator identically (one
        ``permutation`` draw) and produce bitwise-identical batch contents.
        """
        rng = ensure_rng(rng)
        if n_minibatches < 1:
            raise ValueError("n_minibatches must be >= 1")
        total = self.rollout_length * self.n_envs
        states = self.states.reshape(total, self.state_dim)
        actions = self.actions.reshape(total, self.action_dim)
        log_probs = self.log_probs.reshape(total)
        advantages = self.advantages.reshape(total)
        returns = self.returns.reshape(total)
        n_splits = min(n_minibatches, total)

        if normalise_advantages:
            if scratch is not None:
                slots = scratch.prepare(total, n_splits, self.state_dim, self.action_dim)
                buffer = scratch.advantages
                np.subtract(advantages, advantages.mean(), out=buffer)
                buffer /= advantages.std() + 1e-8
                advantages = buffer
            else:
                advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        elif scratch is not None:
            slots = scratch.prepare(total, n_splits, self.state_dim, self.action_dim)

        order = rng.permutation(total)
        for slot_index, index in enumerate(np.array_split(order, n_splits)):
            if scratch is not None:
                # mode="clip" selects numpy's unchecked gather path (the
                # default "raise" mode bounds-checks in a second pass and is
                # measurably slower); permutation indices are always in range
                # so clipping never actually engages.  The ndarray method is
                # used rather than np.take — the functional wrapper adds two
                # dispatch hops per call on this per-minibatch hot path.
                batch = slots[slot_index]
                states.take(index, axis=0, out=batch.states, mode="clip")
                actions.take(index, axis=0, out=batch.actions, mode="clip")
                log_probs.take(index, out=batch.log_probs, mode="clip")
                advantages.take(index, out=batch.advantages, mode="clip")
                returns.take(index, out=batch.returns, mode="clip")
                yield batch
            else:
                yield _Batch(
                    states=states[index],
                    actions=actions[index],
                    log_probs=log_probs[index],
                    advantages=advantages[index],
                    returns=returns[index],
                )
