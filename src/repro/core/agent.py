"""The Amoeba agent: training facade tying together environment, encoder,
actor-critic and PPO (Figure 3 / Algorithm 1 of the paper).

Typical usage::

    censor = DeepFingerprintingClassifier(representation).fit(clf_train.flows)
    agent = Amoeba(censor, normalizer, AmoebaConfig.for_tor(), rng=0)
    agent.train(attack_train.censored_flows, total_timesteps=20_000)
    report = agent.evaluate(test.censored_flows)
    print(report.attack_success_rate, report.data_overhead, report.time_overhead)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn, obs
from ..censors.base import CensorClassifier
from ..features.representation import FlowNormalizer
from ..flows.flow import Flow, FlowLabel
from ..nn.serialization import (
    load_prefixed_state,
    load_state_dict,
    save_state_dict,
    state_dict_to_bytes,
)
from ..utils.logging import TrainingLogger
from ..utils.rng import collection_seed_tree, ensure_rng, spawn_rngs
from .actor_critic import Critic, GaussianActor
from .config import AmoebaConfig
from .env import ActionKind, AdversarialFlowEnv, EpisodeSummary
from .ppo import PPOUpdater
from .rollout import RolloutBuffer
from .state_encoder import StateEncoder, pretrain_state_encoder
from .vec_env import BatchedEpisodeEncoder, VectorFlowEnv, build_envs_from_seed_tree

__all__ = ["Amoeba", "AdversarialResult", "EvaluationReport"]


@dataclass(frozen=True)
class AdversarialResult:
    """Outcome of attacking one flow."""

    original_flow: Flow
    adversarial_flow: Flow
    success: bool
    final_score: float
    data_overhead: float
    time_overhead: float
    action_counts: Dict[str, int]
    n_steps: int

    @classmethod
    def from_summary(cls, summary: EpisodeSummary) -> "AdversarialResult":
        return cls(
            original_flow=summary.original_flow,
            adversarial_flow=summary.adversarial_flow,
            success=summary.success,
            final_score=summary.final_score,
            data_overhead=summary.data_overhead,
            time_overhead=summary.time_overhead,
            action_counts=summary.action_counts(),
            n_steps=summary.n_steps,
        )


@dataclass(frozen=True)
class EvaluationReport:
    """Aggregate attack metrics over a set of flows (Table 1 columns)."""

    attack_success_rate: float
    data_overhead: float
    time_overhead: float
    n_flows: int
    results: Tuple[AdversarialResult, ...] = field(repr=False, default=())

    def as_dict(self) -> Dict[str, float]:
        return {
            "asr": self.attack_success_rate,
            "data_overhead": self.data_overhead,
            "time_overhead": self.time_overhead,
            "n_flows": float(self.n_flows),
        }


class Amoeba:
    """Black-box adversarial reinforcement-learning agent.

    Parameters
    ----------
    censor:
        The trained censoring classifier being attacked (only its decisions
        are observed — the black-box threat model of Section 2).
    normalizer:
        Size/delay normalisation shared with the censor's representation.
    config:
        :class:`AmoebaConfig`; defaults to :meth:`AmoebaConfig.for_tor`.
    state_encoder:
        Optional pre-trained :class:`StateEncoder`; when omitted one is
        pre-trained on synthetic flows (Algorithm 2) at construction time.
    """

    def __init__(
        self,
        censor: CensorClassifier,
        normalizer: FlowNormalizer,
        config: Optional[AmoebaConfig] = None,
        rng=None,
        state_encoder: Optional[StateEncoder] = None,
        encoder_pretrain_kwargs: Optional[dict] = None,
    ) -> None:
        self.censor = censor
        self.normalizer = normalizer
        self.config = config or AmoebaConfig.for_tor()
        self._rng = ensure_rng(rng)

        if state_encoder is None:
            pretrain_kwargs = dict(
                hidden_size=self.config.encoder_hidden,
                num_layers=self.config.encoder_layers,
                n_flows=120,
                max_length=40,
                epochs=2,
                rng=self._rng,
            )
            pretrain_kwargs.update(encoder_pretrain_kwargs or {})
            state_encoder, _, _ = pretrain_state_encoder(**pretrain_kwargs)
        self.state_encoder = state_encoder
        if self.state_encoder.hidden_size != self.config.encoder_hidden:
            # Keep the configuration honest when a custom encoder is provided.
            self.config = self.config.with_overrides(encoder_hidden=self.state_encoder.hidden_size)

        # Evaluation owns stream 3 so `evaluate()` / mid-training eval never
        # advances the main RNG: training outcomes are invariant to the
        # evaluation cadence.  Spawning 4 children instead of 3 leaves the
        # first three streams (and the parent's state) bit-identical.
        actor_rng, critic_rng, ppo_rng, eval_rng = spawn_rngs(self._rng, 4)
        self._eval_rng = eval_rng
        self.actor = GaussianActor(
            state_dim=self.config.state_dim,
            hidden_dims=self.config.actor_hidden,
            initial_log_std=self.config.initial_log_std,
            initial_action_bias=self.config.initial_action_bias,
            rng=actor_rng,
        )
        self.critic = Critic(self.config.state_dim, hidden_dims=self.config.critic_hidden, rng=critic_rng)
        self.updater = PPOUpdater(self.actor, self.critic, self.config, rng=ppo_rng)

        self.training_log = TrainingLogger("amoeba")
        self._episode_successes: List[bool] = []
        self._timesteps_trained = 0

    # ------------------------------------------------------------------ #
    # State construction: s_t = E(x_1:t) || E(a_1:t)
    # ------------------------------------------------------------------ #
    def encode_state(self, env: AdversarialFlowEnv) -> np.ndarray:
        observation_code = self.state_encoder.encode_pairs(env.observation_history())
        action_code = self.state_encoder.encode_pairs(env.action_history())
        return np.concatenate([observation_code, action_code])

    # ------------------------------------------------------------------ #
    # Training (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _filter_censored(self, flows: Sequence[Flow]) -> List[Flow]:
        censored = [flow for flow in flows if flow.label == FlowLabel.CENSORED]
        if not censored:
            raise ValueError("no censored flows provided to train the attack on")
        return censored

    def _draw_noise(self, noise_rngs: Optional[List[np.random.Generator]]) -> Optional[np.ndarray]:
        """Per-slot exploration noise from the collection seed tree, if any."""
        if noise_rngs is None:
            return None
        return np.stack([rng.normal(size=self.actor.action_dim) for rng in noise_rngs])

    def _collect_tick_sequential(
        self,
        envs: List[AdversarialFlowEnv],
        buffer: RolloutBuffer,
        states: np.ndarray,
        recent_summaries: List[EpisodeSummary],
        noise_rngs: Optional[List[np.random.Generator]] = None,
    ) -> np.ndarray:
        """The seed per-environment collection loop, kept as the reference
        path for equivalence testing and ablation (O(n_envs) model forwards
        per tick, O(T) full-history re-encodes per step)."""
        config = self.config
        actions = np.zeros((config.n_envs, self.actor.action_dim))
        log_probs = np.zeros(config.n_envs)
        values = np.zeros(config.n_envs)
        rewards = np.zeros(config.n_envs)
        dones = np.zeros(config.n_envs, dtype=bool)
        next_states = np.zeros_like(states)
        noise = self._draw_noise(noise_rngs)

        for index, env in enumerate(envs):
            action, log_prob = self.actor.act(
                states[index], noise=None if noise is None else noise[index]
            )
            value = self.critic.value(states[index])
            _, reward, done, info = env.step(action)
            actions[index] = action
            log_probs[index] = log_prob
            values[index] = value
            rewards[index] = reward
            dones[index] = done
            if done:
                summary: EpisodeSummary = info["episode"]
                recent_summaries.append(summary)
                self._episode_successes.append(summary.success)
                env.reset()
            next_states[index] = self.encode_state(env)

        buffer.add(states, actions, log_probs, rewards, values, dones)
        return next_states

    def train(
        self,
        flows: Sequence[Flow],
        total_timesteps: int = 10_000,
        eval_flows: Optional[Sequence[Flow]] = None,
        eval_every: Optional[int] = None,
        eval_size: int = 20,
        callback: Optional[Callable[[Dict], None]] = None,
        vectorized: bool = True,
        workers: Optional[int] = None,
        pipeline: Optional[bool] = None,
        transport: Optional[str] = None,
    ) -> TrainingLogger:
        """Train the policy against the censor on the given censored flows.

        ``eval_flows``/``eval_every`` enable periodic held-out evaluation so
        convergence curves (Figures 7 and 9) can be reproduced; each record in
        the training log also stores the censor query count at that point.

        ``vectorized`` selects the batched collection engine (default): all
        ``n_envs`` environments advance per tick with one actor/critic
        forward, one incremental encoder step and one censor score batch.
        ``vectorized=False`` keeps the per-environment reference loop.

        ``workers`` shards collection across that many worker processes
        (``n_envs`` must divide evenly): each worker hosts its contiguous
        slice of the environment slots plus a censor replica, is refreshed
        each iteration with the current actor/critic/encoder checkpoint,
        and returns its rollout segment for a deterministic merge; PPO
        updates stay in this process.  A crashed worker is restarted by
        command-log replay without corrupting the rollout.  ``transport``
        selects where those workers live — ``None``/``"fork"`` for local
        forks (the default), ``"tcp"`` / ``"tcp://host:port,..."`` for
        workers behind ``repro-amoeba worker-host`` daemons (see
        :mod:`repro.distrib.transport`); the merged rollout is
        bit-identical whichever transport carried it.

        ``pipeline`` (default ``config.pipeline_collection``, i.e. off)
        double-buffers sharded collection: each iteration the driver merges
        the in-flight rollout, immediately kicks off the next collect with
        the current — pre-update — policy, and runs the PPO update while
        the workers are busy, hiding update time behind collection.  The
        one-iteration policy staleness is sound for PPO (``old_log_probs``
        are recorded at collection time, so the clipped ratio corrects for
        it) but changes the trajectory stream, so pipelining is opt-in and
        requires ``workers``; the synchronous default stays bit-equivalent
        to single-process vectorized training.

        All collection modes build their environment and exploration-noise
        generators from the same per-slot seed tree
        (:func:`repro.utils.rng.collection_seed_tree`) and run policy /
        encoder inference under :func:`repro.nn.row_consistent_matmul`, so
        their trajectories are bit-identical for censors whose scoring is
        batch-size invariant (trees, SVM) and match up to the thresholded
        censor score for neural censors, whose BLAS forwards may differ in
        the last ULP across batch shapes.
        """
        if total_timesteps < 1:
            raise ValueError("total_timesteps must be >= 1")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for in-process collection)")
        if workers is not None and not vectorized:
            # The sequential reference loop exists precisely to pin down the
            # single-env scoring batch shape; silently running it sharded
            # (and therefore vectorized) would defeat that purpose.
            raise ValueError("workers requires the vectorized engine (vectorized=True)")
        if transport is not None and workers is None:
            raise ValueError("transport requires workers: it places worker processes")
        pipeline = self.config.pipeline_collection if pipeline is None else bool(pipeline)
        if pipeline and workers is None:
            raise ValueError(
                "pipeline=True requires workers: double-buffered collection "
                "overlaps the PPO update with worker-side collects"
            )
        flows = self._filter_censored(flows)
        config = self.config
        buffer = RolloutBuffer(
            config.rollout_length, config.n_envs, config.state_dim, self.actor.action_dim
        )

        # One (env stream, noise stream) pair per environment slot, consumed
        # identically by every collection mode (see the seed-tree layout in
        # repro.utils.rng).
        seed_tree = collection_seed_tree(self._rng, config.n_envs)

        # Imported lazily: repro.distrib imports repro.core at module scope,
        # so top-level imports here would be circular.
        engine = None
        runner = None
        if workers is not None:
            from ..distrib.sharded import ShardedRolloutEngine

            engine = ShardedRolloutEngine.for_agent(
                self, flows, seed_tree, workers, transport=transport
            )
        elif vectorized:
            # The in-process vectorized path is one inline shard hosting all
            # slots — the same collection kernel the workers run, so there
            # is exactly one batched tick implementation to keep correct.
            from ..distrib.shard import ShardRunner

            runner = ShardRunner(
                self.actor,
                self.critic,
                self.state_encoder,
                self.censor,
                self.normalizer,
                config,
                flows,
                seed_tree,
            )
        else:
            noise_rngs = [np.random.default_rng(noise_seq) for _, noise_seq in seed_tree]
            envs = build_envs_from_seed_tree(
                self.censor, self.normalizer, config, flows, seed_tree
            )
            for env in envs:
                env.reset()
            states = np.stack([self.encode_state(env) for env in envs])

        steps_done = 0
        iteration_steps = config.rollout_length * config.n_envs
        try:
            if engine is not None and pipeline:
                # Prime the pipeline: rollout 0 is collected with the
                # initial weights while the driver falls through to wait().
                engine.broadcast(state_dict_to_bytes(self._policy_state()))
                engine.collect_async(config.rollout_length)
            # Workers hold the current weights right after the prime; the
            # pipelined loop only re-broadcasts once an update has run.
            weights_stale = False
            iterations_counter = obs.counter("train.iterations")
            timesteps_counter = obs.counter("train.timesteps")
            while steps_done < total_timesteps:
                with obs.span("train.iteration", steps=iteration_steps):
                    buffer.reset()
                    recent_summaries: List[EpisodeSummary] = []
                    collect_span = obs.span("train.collect")
                    if engine is not None or runner is not None:
                        with collect_span:
                            if engine is None:
                                result = runner.collect(config.rollout_length)
                            elif pipeline:
                                result = engine.wait()
                                self.censor.record_external_queries(result.query_delta)
                                if steps_done + iteration_steps < total_timesteps:
                                    # Double-buffering: the next collect starts now
                                    # with the current (pre-update) policy and runs
                                    # while updater.update() below is busy.
                                    if weights_stale:
                                        engine.broadcast(
                                            state_dict_to_bytes(self._policy_state())
                                        )
                                        weights_stale = False
                                    engine.collect_async(config.rollout_length)
                            else:
                                engine.broadcast(state_dict_to_bytes(self._policy_state()))
                                result = engine.collect(config.rollout_length)
                                # Worker censor replicas counted these queries; fold
                                # them into this process's censor (the inline runner
                                # queries self.censor directly, so nothing to fold).
                                self.censor.record_external_queries(result.query_delta)
                            buffer.load(
                                result.states,
                                result.actions,
                                result.log_probs,
                                result.rewards,
                                result.values,
                                result.dones,
                            )
                        for _tick, _env_index, summary in result.summaries:
                            recent_summaries.append(summary)
                            self._episode_successes.append(summary.success)
                        steps_done += iteration_steps
                        # Bootstrap values computed shard-side with the
                        # collection-time critic — identical to a driver-side
                        # forward in synchronous modes, and the consistent
                        # choice under pipelining (the driver's critic may be
                        # one update ahead of this rollout's values).
                        last_values = result.final_values
                    else:
                        with collect_span:
                            while not buffer.full:
                                states = self._collect_tick_sequential(
                                    envs, buffer, states, recent_summaries, noise_rngs
                                )
                                steps_done += config.n_envs
                            last_values = self.critic.value_batch(states)

                    buffer.finalize(last_values, config.gamma, config.gae_lambda)
                    stats = self.updater.update(buffer)
                    weights_stale = True
                    self._timesteps_trained += iteration_steps
                    iterations_counter.inc()
                    timesteps_counter.inc(iteration_steps)

                window = self._episode_successes[-50:]
                train_asr = float(np.mean(window)) if window else 0.0
                record = {
                    "timesteps": float(self._timesteps_trained),
                    "queries": float(self.censor.query_count),
                    "train_asr": train_asr,
                    "mean_reward": float(buffer.rewards.mean()),
                    "policy_loss": stats.policy_loss,
                    "value_loss": stats.value_loss,
                    "entropy": stats.entropy,
                }
                if (
                    eval_flows is not None
                    and eval_every is not None
                    and (self._timesteps_trained // (config.rollout_length * config.n_envs))
                    % max(1, eval_every)
                    == 0
                ):
                    sample = list(eval_flows)[:eval_size]
                    report = self.evaluate(sample)
                    record["test_asr"] = report.attack_success_rate
                self.training_log.log(**record)
                if callback is not None:
                    callback(record)
        finally:
            if engine is not None:
                engine.close()

        return self.training_log

    # ------------------------------------------------------------------ #
    # Attack / evaluation
    # ------------------------------------------------------------------ #
    def _make_eval_env(self, flow: Flow) -> AdversarialFlowEnv:
        # During evaluation we do not need per-step rewards; masking every
        # step avoids spending censor queries on intermediate prefixes (the
        # final classification in the episode summary is still performed).
        # The step budget is widened so the full payload is always delivered
        # regardless of the training-time episode cap (constraint (1)).
        step_budget = max(
            self.config.max_episode_steps,
            flow.n_packets * (1 + self.config.max_truncations_per_packet),
        )
        eval_config = self.config.with_overrides(
            reward_mask_rate=1.0, max_episode_steps=step_budget
        )
        # Evaluation draws (flow order, masking) come from the dedicated
        # eval stream — never from self._rng, which seeds training: a
        # mid-training evaluation must not shift the collection seed tree
        # of subsequent iterations.
        return AdversarialFlowEnv(
            self.censor, self.normalizer, eval_config, [flow], rng=self._eval_rng
        )

    def _attack_batch(
        self, flows: List[Flow], deterministic: bool
    ) -> List[AdversarialResult]:
        """Attack a batch of flows in lockstep through the vectorized engine.

        Episodes finish at different times; finished environments drop out of
        the batch while the survivors keep sharing one actor forward, one
        incremental encoder step and one censor score batch per tick.
        """
        envs = [self._make_eval_env(flow) for flow in flows]
        vec_env = VectorFlowEnv(envs, auto_reset=False)
        tracker = BatchedEpisodeEncoder(self.state_encoder, len(envs))
        observations = np.stack([env.reset(flow) for env, flow in zip(envs, flows)])
        tracker.reset_all(observations)

        results: List[Optional[AdversarialResult]] = [None] * len(envs)
        active = list(range(len(envs)))
        while active:
            states = tracker.states(active)
            actions, _ = self.actor.act_batch(states, deterministic=deterministic)
            observations, _, dones, infos = vec_env.step_subset(active, actions)
            for row, index in enumerate(active):
                if dones[row]:
                    results[index] = AdversarialResult.from_summary(infos[row]["episode"])
            recorded_actions = np.stack([info["recorded_action"] for info in infos])
            tracker.step(recorded_actions, observations, dones, indices=active)
            active = [index for row, index in enumerate(active) if not dones[row]]
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def attack(self, flow: Flow, deterministic: bool = True) -> AdversarialResult:
        """Generate the adversarial version of a single flow."""
        return self._attack_batch([flow], deterministic=deterministic)[0]

    def attack_many(
        self,
        flows: Sequence[Flow],
        deterministic: bool = True,
        batch_size: Optional[int] = None,
    ) -> List[AdversarialResult]:
        """Attack every flow, ``batch_size`` environments at a time.

        Batching only changes how the work is scheduled, never the query
        count.  With the default deterministic policy the adversarial flows
        are identical to attacking one by one; each flow's final censor
        score is computed from the same adversarial flow either way, but for
        neural censors its last bits may vary with the scoring batch shape.

        When ``batch_size`` is omitted, ``config.eval_batch_size`` is used
        if set (e.g. plumbed through :func:`~repro.core.arms_race.run_arms_race`),
        falling back to ``max(n_envs, 8)``.
        """
        flows = list(flows)
        if batch_size is None:
            if self.config.eval_batch_size is not None:
                batch_size = self.config.eval_batch_size
            else:
                batch_size = max(self.config.n_envs, 8)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        results: List[AdversarialResult] = []
        for start in range(0, len(flows), batch_size):
            results.extend(
                self._attack_batch(flows[start : start + batch_size], deterministic)
            )
        return results

    def evaluate(
        self,
        flows: Sequence[Flow],
        deterministic: bool = True,
        batch_size: Optional[int] = None,
    ) -> EvaluationReport:
        """Attack every flow and aggregate ASR / data overhead / time overhead."""
        flows = list(flows)
        if not flows:
            raise ValueError("cannot evaluate on an empty flow list")
        results = self.attack_many(flows, deterministic=deterministic, batch_size=batch_size)
        return EvaluationReport(
            attack_success_rate=float(np.mean([r.success for r in results])),
            data_overhead=float(np.mean([r.data_overhead for r in results])),
            time_overhead=float(np.mean([r.time_overhead for r in results])),
            n_flows=len(results),
            results=tuple(results),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def _policy_state(self) -> Dict[str, np.ndarray]:
        """Combined actor/critic/encoder state dict with name prefixes.

        This is both the on-disk checkpoint layout (:meth:`save_policy`) and
        the broadcast payload refreshing sharded rollout workers each
        iteration (after :func:`repro.nn.state_dict_to_bytes`).
        """
        state = {}
        for prefix, module in (
            ("actor", self.actor),
            ("critic", self.critic),
            ("encoder", self.state_encoder),
        ):
            for name, value in module.state_dict().items():
                state[f"{prefix}.{name}"] = value
        return state

    def save_policy(self, path) -> None:
        """Persist actor, critic and state-encoder parameters."""
        save_state_dict(
            self._policy_state(), path, metadata={"timesteps_trained": self._timesteps_trained}
        )

    def load_policy(self, path) -> None:
        """Load parameters saved by :meth:`save_policy`."""
        load_prefixed_state(
            load_state_dict(path),
            (
                ("actor", self.actor),
                ("critic", self.critic),
                ("encoder", self.state_encoder),
            ),
        )

    @property
    def timesteps_trained(self) -> int:
        return self._timesteps_trained
