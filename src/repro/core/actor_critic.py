"""Gaussian-policy actor and value critic (Section 4.3).

Both networks are MLPs over the fixed-size state produced by the
StateEncoder.  The actor outputs the mean of a diagonal Gaussian over the two
action components (normalised packet size and extra delay); the log standard
deviation is a learned, state-independent parameter vector, which is the
standard PPO continuous-control parameterisation and implements the paper's
reparameterisation trick ``a = mean + eps * sigma``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..utils.rng import ensure_rng

__all__ = ["GaussianActor", "Critic", "build_mlp"]


def build_mlp(input_dim: int, hidden_dims: Sequence[int], output_dim: int, rng=None) -> nn.Sequential:
    """Tanh MLP used for both the actor body and the critic."""
    rng = ensure_rng(rng)
    layers: List[nn.Module] = []
    previous = input_dim
    for width in hidden_dims:
        layers.append(nn.Linear(previous, width, rng=rng))
        layers.append(nn.Tanh())
        previous = width
    layers.append(nn.Linear(previous, output_dim, rng=rng))
    return nn.Sequential(*layers)


class GaussianActor(nn.Module):
    """Diagonal-Gaussian policy over the (size, delay) action space."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int = 2,
        hidden_dims: Sequence[int] = (64, 32),
        initial_log_std: float = -0.5,
        initial_action_bias: Optional[Sequence[float]] = None,
        rng=None,
    ) -> None:
        super().__init__()
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._rng = ensure_rng(rng)
        self.body = build_mlp(state_dim, hidden_dims, action_dim, rng=self._rng)
        if initial_action_bias is not None:
            bias = np.asarray(initial_action_bias, dtype=np.float64)
            if bias.shape != (action_dim,):
                raise ValueError(f"initial_action_bias must have shape ({action_dim},)")
            # The last Linear in the body holds the output bias.
            output_layer = self.body[len(self.body) - 1]
            output_layer.bias.data = bias.copy()
        self.log_std = nn.Parameter(np.full(action_dim, float(initial_log_std)), name="log_std")

    # ------------------------------------------------------------------ #
    def forward(self, states: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Return (mean, log_std) for a batch of states."""
        mean = self.body(states)
        return mean, self.log_std

    def act(self, state: np.ndarray, deterministic: bool = False) -> Tuple[np.ndarray, float]:
        """Sample an action for a single state; returns (action, log_prob)."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        with nn.no_grad():
            mean, log_std = self.forward(nn.Tensor(state))
        mean = mean.data[0]
        std = np.exp(log_std.data)
        if deterministic:
            action = mean.copy()
        else:
            action = mean + self._rng.normal(size=self.action_dim) * std
        log_prob = float(
            np.sum(
                -0.5 * ((action - mean) / std) ** 2
                - np.log(std)
                - 0.5 * np.log(2.0 * np.pi)
            )
        )
        return action, log_prob

    def log_prob_and_entropy(self, states: nn.Tensor, actions: np.ndarray) -> Tuple[nn.Tensor, nn.Tensor]:
        """Differentiable log-probabilities of ``actions`` and policy entropy."""
        mean, log_std = self.forward(states)
        log_probs = F.gaussian_log_prob(nn.Tensor(actions), mean, log_std)
        entropy = F.gaussian_entropy(log_std)
        return log_probs, entropy


class Critic(nn.Module):
    """State-value function approximator."""

    def __init__(self, state_dim: int, hidden_dims: Sequence[int] = (64, 32), rng=None) -> None:
        super().__init__()
        self.body = build_mlp(state_dim, hidden_dims, 1, rng=ensure_rng(rng))

    def forward(self, states: nn.Tensor) -> nn.Tensor:
        return self.body(states).reshape(-1)

    def value(self, state: np.ndarray) -> float:
        """Value estimate of a single state (no gradient)."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        with nn.no_grad():
            value = self.forward(nn.Tensor(state))
        return float(value.data[0])
