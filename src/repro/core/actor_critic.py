"""Gaussian-policy actor and value critic (Section 4.3).

Both networks are MLPs over the fixed-size state produced by the
StateEncoder.  The actor outputs the mean of a diagonal Gaussian over the two
action components (normalised packet size and extra delay); the log standard
deviation is a learned, state-independent parameter vector, which is the
standard PPO continuous-control parameterisation and implements the paper's
reparameterisation trick ``a = mean + eps * sigma``.

The batched inference paths (``act_batch`` / ``value_batch``) run under
``nn.row_consistent_matmul()``, so their MLP forwards execute on the active
:mod:`repro.nn.backend` kernel and each output row is bit-independent of
the batch composition — the property the collection and serving tiers'
bit-equivalence tests rely on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..utils.rng import ensure_rng

__all__ = ["GaussianActor", "Critic", "build_mlp"]


def build_mlp(input_dim: int, hidden_dims: Sequence[int], output_dim: int, rng=None) -> nn.Sequential:
    """Tanh MLP used for both the actor body and the critic."""
    rng = ensure_rng(rng)
    layers: List[nn.Module] = []
    previous = input_dim
    for width in hidden_dims:
        layers.append(nn.Linear(previous, width, rng=rng))
        layers.append(nn.Tanh())
        previous = width
    layers.append(nn.Linear(previous, output_dim, rng=rng))
    return nn.Sequential(*layers)


class GaussianActor(nn.Module):
    """Diagonal-Gaussian policy over the (size, delay) action space."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int = 2,
        hidden_dims: Sequence[int] = (64, 32),
        initial_log_std: float = -0.5,
        initial_action_bias: Optional[Sequence[float]] = None,
        rng=None,
    ) -> None:
        super().__init__()
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._rng = ensure_rng(rng)
        self.body = build_mlp(state_dim, hidden_dims, action_dim, rng=self._rng)
        if initial_action_bias is not None:
            bias = np.asarray(initial_action_bias, dtype=np.float64)
            if bias.shape != (action_dim,):
                raise ValueError(f"initial_action_bias must have shape ({action_dim},)")
            # The last Linear in the body holds the output bias.
            output_layer = self.body[len(self.body) - 1]
            output_layer.bias.data = bias.copy()
        self.log_std = nn.Parameter(np.full(action_dim, float(initial_log_std)), name="log_std")

    # ------------------------------------------------------------------ #
    def forward(self, states: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Return (mean, log_std) for a batch of states."""
        mean = self.body(states)
        return mean, self.log_std

    def act(
        self,
        state: np.ndarray,
        deterministic: bool = False,
        noise: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, float]:
        """Sample an action for a single state; returns (action, log_prob)."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        if noise is not None:
            noise = np.asarray(noise, dtype=np.float64).reshape(1, -1)
        actions, log_probs = self.act_batch(state, deterministic=deterministic, noise=noise)
        return actions[0], float(log_probs[0])

    def act_batch(
        self,
        states: np.ndarray,
        deterministic: bool = False,
        noise: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample actions for a batch of states in one forward pass.

        ``states`` has shape ``(n, state_dim)``; returns ``(actions,
        log_probs)`` of shapes ``(n, action_dim)`` and ``(n,)``.  The noise
        for row ``i`` is drawn from the same generator stream position as the
        ``i``-th sequential :meth:`act` call would use, and the forward runs
        under :func:`repro.nn.row_consistent_matmul`, so a batched call is
        bit-equivalent to ``n`` sequential single-state calls.

        ``noise`` optionally supplies the standard-normal draws (one
        ``(n, action_dim)`` row per state) instead of consuming the actor's
        own generator.  The collection engines use this to give every
        environment slot its own noise stream, which keeps trajectories
        independent of how slots are batched or sharded across processes.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2:
            raise ValueError(f"states must be a (n, state_dim) array, got {states.shape}")
        with nn.no_grad(), nn.row_consistent_matmul():
            mean, log_std = self.forward(nn.Tensor(states))
        mean = mean.data
        std = np.exp(log_std.data)
        if deterministic:
            actions = mean.copy()
        else:
            if noise is None:
                noise = self._rng.normal(size=(len(states), self.action_dim))
            else:
                noise = np.asarray(noise, dtype=np.float64)
                if noise.shape != (len(states), self.action_dim):
                    raise ValueError(
                        f"noise must have shape {(len(states), self.action_dim)}, got {noise.shape}"
                    )
            actions = mean + noise * std
        log_probs = np.sum(
            -0.5 * ((actions - mean) / std) ** 2
            - np.log(std)
            - 0.5 * np.log(2.0 * np.pi),
            axis=1,
        )
        return actions, log_probs

    def log_prob_and_entropy(self, states: nn.Tensor, actions: np.ndarray) -> Tuple[nn.Tensor, nn.Tensor]:
        """Differentiable log-probabilities of ``actions`` and policy entropy."""
        mean, log_std = self.forward(states)
        log_probs = F.gaussian_log_prob(nn.Tensor(actions), mean, log_std)
        entropy = F.gaussian_entropy(log_std)
        return log_probs, entropy


class Critic(nn.Module):
    """State-value function approximator."""

    def __init__(self, state_dim: int, hidden_dims: Sequence[int] = (64, 32), rng=None) -> None:
        super().__init__()
        self.body = build_mlp(state_dim, hidden_dims, 1, rng=ensure_rng(rng))

    def forward(self, states: nn.Tensor) -> nn.Tensor:
        return self.body(states).reshape(-1)

    def value(self, state: np.ndarray) -> float:
        """Value estimate of a single state (no gradient)."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        return float(self.value_batch(state)[0])

    def value_batch(self, states: np.ndarray) -> np.ndarray:
        """Value estimates for a ``(n, state_dim)`` batch in one forward pass.

        Runs under :func:`repro.nn.row_consistent_matmul` so each row matches
        the corresponding single-state :meth:`value` call bit-for-bit.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2:
            raise ValueError(f"states must be a (n, state_dim) array, got {states.shape}")
        with nn.no_grad(), nn.row_consistent_matmul():
            values = self.forward(nn.Tensor(states))
        return values.data.copy()
