"""Adversarial flow profiles (Section 5.6.1, Table 2).

Online, per-packet inference may be too slow relative to inter-packet delays
(Figure 11), so the paper proposes an offline deployment mode: store the
packet-size / delay "shapes" of adversarial flows that successfully evaded a
censor in a profile database synchronised between client and server proxies,
then embed real payload into those pre-generated shapes.  If the payload does
not fit into one profile, additional profiles (i.e. additional connections)
are used; if a profile prescribes a packet but no payload is waiting, a dummy
packet is sent anyway.  Both effects add overhead, which Table 2 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..flows.flow import Flow
from ..utils.rng import ensure_rng

__all__ = ["AdversarialProfile", "ProfileDatabase", "ProfileEmbeddingResult"]


@dataclass(frozen=True)
class AdversarialProfile:
    """The shape of one successful adversarial flow (no payload)."""

    sizes: np.ndarray
    delays: np.ndarray

    @classmethod
    def from_flow(cls, flow: Flow) -> "AdversarialProfile":
        return cls(sizes=np.asarray(flow.sizes, dtype=np.float64), delays=np.asarray(flow.delays, dtype=np.float64))

    @property
    def n_packets(self) -> int:
        return len(self.sizes)

    @property
    def upstream_capacity(self) -> float:
        return float(self.sizes[self.sizes > 0].sum())

    @property
    def downstream_capacity(self) -> float:
        return float(-self.sizes[self.sizes < 0].sum())

    @property
    def total_capacity(self) -> float:
        return float(np.abs(self.sizes).sum())

    @property
    def duration(self) -> float:
        return float(self.delays.sum())


@dataclass(frozen=True)
class ProfileEmbeddingResult:
    """Overhead of transmitting one tunnelled flow through stored profiles."""

    n_profiles_used: int
    payload_bytes: float
    transmitted_bytes: float
    dummy_bytes: float
    original_duration: float
    profile_duration: float
    handshake_overhead_ms: float
    # Whether the whole payload fit within the profile-draw cap.  A False
    # value means the overhead fields *underreport* what full delivery
    # would cost (the remainder was never placed) — Table 2 aggregation
    # must surface the rate instead of silently averaging truncated flows.
    fully_embedded: bool = True

    @property
    def data_overhead(self) -> float:
        """padding / (original payload + padding), as defined in Section 5.3."""
        padding = self.transmitted_bytes - self.payload_bytes
        denominator = self.payload_bytes + padding
        return float(padding / denominator) if denominator > 0 else 0.0

    @property
    def time_overhead(self) -> float:
        """delays / (delays + total transmission time)."""
        added = max(0.0, self.profile_duration + self.handshake_overhead_ms - self.original_duration)
        denominator = added + self.profile_duration + self.handshake_overhead_ms
        return float(added / denominator) if denominator > 0 else 0.0


class ProfileDatabase:
    """Database of successful adversarial flow profiles.

    Parameters
    ----------
    handshake_cost_ms:
        Extra latency charged each time an additional profile (i.e. a new
        TCP/TLS connection) has to be opened to carry leftover payload —
        the "extra TCP handshakes" the paper mentions when explaining the
        larger time overhead of the profile mode.
    max_embed_passes:
        Draw cap of :meth:`embed_flow`: at most this many full passes over
        the database (each pass a fresh random permutation) may be spent
        placing one flow's payload.  A flow still unplaced at the cap is
        returned with ``fully_embedded=False`` instead of looping forever
        on a database whose profiles lack capacity in some direction.
    """

    def __init__(
        self,
        profiles: Optional[Sequence[AdversarialProfile]] = None,
        handshake_cost_ms: float = 80.0,
        max_embed_passes: int = 10,
    ) -> None:
        if max_embed_passes < 1:
            raise ValueError("max_embed_passes must be >= 1")
        self._profiles: List[AdversarialProfile] = list(profiles or [])
        self.handshake_cost_ms = float(handshake_cost_ms)
        self.max_embed_passes = int(max_embed_passes)

    # ------------------------------------------------------------------ #
    def add_profile(self, profile: AdversarialProfile) -> None:
        self._profiles.append(profile)

    def add_flows(self, flows: Sequence[Flow], successes: Optional[Sequence[bool]] = None) -> int:
        """Store profiles of (successful) adversarial flows; returns count added."""
        added = 0
        for index, flow in enumerate(flows):
            if successes is not None and not successes[index]:
                continue
            self.add_profile(AdversarialProfile.from_flow(flow))
            added += 1
        return added

    def __len__(self) -> int:
        return len(self._profiles)

    def __getitem__(self, index: int) -> AdversarialProfile:
        return self._profiles[index]

    # ------------------------------------------------------------------ #
    def embed_flow(self, flow: Flow, rng=None) -> ProfileEmbeddingResult:
        """Embed a tunnelled flow's payload into stored profiles.

        Profiles are drawn at random (the database is synchronised between
        both proxies, so either end can pick); each profile's upstream and
        downstream byte capacity carries the corresponding directional
        payload of the original flow.  Every packet prescribed by a used
        profile is transmitted in full — unfilled capacity becomes dummy
        bytes.

        Drawing proceeds in passes, each a fresh permutation of the
        database, up to ``max_embed_passes`` passes.  A heavy flow whose
        payload is still unplaced at the cap is returned with
        ``fully_embedded=False`` — its overhead fields cover only the
        placed portion, and :meth:`overhead_summary` reports the rate so
        Table 2 aggregates cannot silently undercount heavy flows.
        """
        if not self._profiles:
            raise RuntimeError("the profile database is empty")
        rng = ensure_rng(rng)

        remaining_up = float(flow.sizes[flow.sizes > 0].sum())
        remaining_down = float(-flow.sizes[flow.sizes < 0].sum())
        payload_bytes = remaining_up + remaining_down

        transmitted = 0.0
        duration = 0.0
        used = 0
        for _ in range(self.max_embed_passes):
            if remaining_up <= 0 and remaining_down <= 0:
                break
            for index in rng.permutation(len(self._profiles)):
                if remaining_up <= 0 and remaining_down <= 0:
                    break
                profile = self._profiles[index]
                used += 1
                transmitted += profile.total_capacity
                duration += profile.duration
                remaining_up = max(0.0, remaining_up - profile.upstream_capacity)
                remaining_down = max(0.0, remaining_down - profile.downstream_capacity)

        dummy = max(0.0, transmitted - payload_bytes)
        handshake_overhead = self.handshake_cost_ms * max(0, used - 1)
        return ProfileEmbeddingResult(
            n_profiles_used=used,
            payload_bytes=payload_bytes,
            transmitted_bytes=transmitted,
            dummy_bytes=dummy,
            original_duration=float(flow.duration),
            profile_duration=duration,
            handshake_overhead_ms=handshake_overhead,
            fully_embedded=remaining_up <= 0 and remaining_down <= 0,
        )

    def embed_many(self, flows: Sequence[Flow], rng=None) -> List[ProfileEmbeddingResult]:
        rng = ensure_rng(rng)
        return [self.embed_flow(flow, rng=rng) for flow in flows]

    def overhead_summary(self, flows: Sequence[Flow], rng=None) -> Dict[str, float]:
        """Average data/time overhead of transmitting ``flows`` via profiles (Table 2).

        ``fully_embedded_rate`` is the fraction of flows whose payload was
        completely placed within the draw cap; overheads of the remainder
        are lower bounds (heavy flows would need more connections still).
        """
        results = self.embed_many(flows, rng=rng)
        return {
            "data_overhead": float(np.mean([r.data_overhead for r in results])),
            "time_overhead": float(np.mean([r.time_overhead for r in results])),
            "mean_profiles_per_flow": float(np.mean([r.n_profiles_used for r in results])),
            "fully_embedded_rate": float(np.mean([r.fully_embedded for r in results])),
        }
