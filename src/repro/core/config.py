"""Amoeba configuration.

Default values follow the paper's hyperparameter selection (Appendix A.4,
Table 3), with network widths scaled down so the CPU-only reproduction trains
in seconds-to-minutes; the paper's exact widths can be restored by passing
``AmoebaConfig.paper_scale()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from ..utils.validation import check_non_negative, check_positive, check_probability

__all__ = ["AmoebaConfig"]


@dataclass
class AmoebaConfig:
    """Hyperparameters of the Amoeba agent and its PPO optimisation.

    Attributes mirror Table 3 of the paper:

    * ``learning_rate`` — Adam step size (paper: 5e-4).
    * ``lambda_split`` — packet-truncation overhead coefficient (paper: 0.05).
    * ``lambda_time`` — time-delay coefficient (paper: 0.2).
    * ``lambda_data`` — data-overhead coefficient (paper: 0.2 Tor, 2.0 V2Ray).
    * ``actor_hidden`` / ``critic_hidden`` — MLP widths (paper: 256, 64, 32).
    * ``encoder_hidden`` / ``encoder_layers`` — StateEncoder GRU (paper: 512, 2).
    * ``gamma`` / ``gae_lambda`` — discounting and GAE (paper: 0.99 / 0.95).
    * ``clip_epsilon`` — PPO ratio clipping.
    * ``entropy_coef`` — exploration bonus weight.
    * ``n_envs`` / ``rollout_length`` / ``n_minibatches`` / ``update_epochs``
      — parallel-rollout shape (Algorithm 1).
    * ``max_delay_ms`` — discretisation bound of the delay action.
    * ``reward_mask_rate`` — probability of masking the adversarial reward
      (Section 5.5.3); masked rewards are replaced by ``masked_reward_value``.
    """

    # Reward shaping
    lambda_split: float = 0.05
    lambda_data: float = 0.2
    lambda_time: float = 0.2
    reward_mask_rate: float = 0.0
    masked_reward_value: float = 0.5

    # Action space
    max_delay_ms: float = 100.0
    min_packet_bytes: int = 64
    max_truncations_per_packet: int = 8

    # Networks
    actor_hidden: Tuple[int, ...] = (64, 32)
    critic_hidden: Tuple[int, ...] = (64, 32)
    encoder_hidden: int = 32
    encoder_layers: int = 2
    initial_log_std: float = -0.5
    # Initial mean of the (size, extra-delay) policy outputs.  Starting the
    # delay head below zero (clipped to zero delay by the environment) biases
    # early exploration towards delay-free shaping, which is where the
    # converged paper policy ends up (Figure 14: delay is the least-used
    # action and time overhead stays below ~10%).
    initial_action_bias: Tuple[float, float] = (0.0, -1.0)

    # PPO optimisation
    learning_rate: float = 5e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    max_grad_norm: float = 0.5
    n_envs: int = 4
    rollout_length: int = 64
    n_minibatches: int = 4
    update_epochs: int = 4

    # Episode shaping
    max_episode_steps: int = 120

    # Evaluation: how many flows `attack_many` / `evaluate` attack in
    # lockstep through the vectorized engine.  ``None`` keeps the default
    # sizing of ``max(n_envs, 8)``; an explicit value (e.g. from
    # ``run_arms_race(eval_batch_size=...)``) overrides it.
    eval_batch_size: Optional[int] = None

    # Pipelined (double-buffered) sharded collection: when true and
    # ``Amoeba.train(workers=...)`` is used, the driver kicks off the next
    # collect with the pre-update policy and runs the PPO update while the
    # workers are busy.  One-iteration-stale rollouts are sound for PPO
    # (old log-probs are recorded at collection time), but the trajectory
    # stream differs from the synchronous path, so this is opt-in; the
    # default keeps sharded training bit-equivalent to single-process
    # vectorized training.
    pipeline_collection: bool = False

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_non_negative(self.lambda_split, "lambda_split")
        check_non_negative(self.lambda_data, "lambda_data")
        check_non_negative(self.lambda_time, "lambda_time")
        check_probability(self.reward_mask_rate, "reward_mask_rate")
        check_positive(self.max_delay_ms, "max_delay_ms")
        check_positive(self.gamma, "gamma")
        check_probability(self.gae_lambda, "gae_lambda")
        check_positive(self.clip_epsilon, "clip_epsilon")
        if self.n_envs < 1 or self.rollout_length < 1:
            raise ValueError("n_envs and rollout_length must be >= 1")
        if self.n_minibatches < 1 or self.update_epochs < 1:
            raise ValueError("n_minibatches and update_epochs must be >= 1")
        if self.min_packet_bytes < 1:
            raise ValueError("min_packet_bytes must be >= 1")
        if self.max_truncations_per_packet < 1:
            raise ValueError("max_truncations_per_packet must be >= 1")
        if self.eval_batch_size is not None and self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1 (or None for the default)")

    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        """Dimension of s_t = E(x_1:t) || E(a_1:t)."""
        return 2 * self.encoder_hidden

    def with_overrides(self, **kwargs) -> "AmoebaConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def for_tor(cls, **kwargs) -> "AmoebaConfig":
        """Defaults used for the Tor (TCP-layer) dataset: lambda_data = 0.2."""
        return cls(lambda_data=0.2, **kwargs)

    @classmethod
    def for_v2ray(cls, **kwargs) -> "AmoebaConfig":
        """Defaults used for the V2Ray (TLS-record) dataset: lambda_data = 2.0."""
        return cls(lambda_data=2.0, **kwargs)

    @classmethod
    def paper_scale(cls, **kwargs) -> "AmoebaConfig":
        """The exact widths reported in Table 3 (much slower on CPU)."""
        defaults = dict(
            actor_hidden=(256, 64, 32),
            critic_hidden=(256, 64, 32),
            encoder_hidden=512,
            encoder_layers=2,
            n_envs=8,
            rollout_length=128,
        )
        defaults.update(kwargs)
        return cls(**defaults)
