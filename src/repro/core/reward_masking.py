"""Reward-masking experiment helpers (Section 5.5.3, Figures 8 and 9).

The masking itself is implemented inside
:class:`~repro.core.env.AdversarialFlowEnv` (a masked step does not query the
censor and receives the neutral reward 0.5).  This module provides the sweep
harness that trains one Amoeba agent per mask rate and records the resulting
attack success rate and actual query count, which is what the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..censors.base import CensorClassifier
from ..features.representation import FlowNormalizer
from ..flows.flow import Flow
from ..utils.rng import ensure_rng
from .agent import Amoeba
from .config import AmoebaConfig

__all__ = ["MaskSweepPoint", "reward_mask_sweep", "expected_queries"]


@dataclass(frozen=True)
class MaskSweepPoint:
    """Result of training Amoeba under one reward-mask rate."""

    mask_rate: float
    attack_success_rate: float
    actual_queries: int
    planned_timesteps: int
    data_overhead: float
    time_overhead: float


def expected_queries(total_timesteps: int, mask_rate: float) -> int:
    """Number of censor queries the paper reports for a mask rate (Fig. 8 x-axis)."""
    if not 0.0 <= mask_rate <= 1.0:
        raise ValueError("mask_rate must be in [0, 1]")
    return int(round(total_timesteps * (1.0 - mask_rate)))


def reward_mask_sweep(
    censor: CensorClassifier,
    normalizer: FlowNormalizer,
    train_flows: Sequence[Flow],
    test_flows: Sequence[Flow],
    mask_rates: Sequence[float] = (0.0, 0.5, 0.9),
    total_timesteps: int = 2000,
    base_config: Optional[AmoebaConfig] = None,
    repeats: int = 1,
    rng=None,
) -> List[MaskSweepPoint]:
    """Train one agent per (mask rate, repeat) and evaluate on held-out flows."""
    rng = ensure_rng(rng)
    base_config = base_config or AmoebaConfig.for_tor()
    points: List[MaskSweepPoint] = []
    for mask_rate in mask_rates:
        asrs, data_overheads, time_overheads, query_counts = [], [], [], []
        for _ in range(repeats):
            config = base_config.with_overrides(reward_mask_rate=float(mask_rate))
            censor.reset_query_count()
            agent = Amoeba(censor, normalizer, config, rng=rng)
            agent.train(train_flows, total_timesteps=total_timesteps)
            training_queries = censor.query_count
            report = agent.evaluate(test_flows)
            asrs.append(report.attack_success_rate)
            data_overheads.append(report.data_overhead)
            time_overheads.append(report.time_overhead)
            query_counts.append(training_queries)
        points.append(
            MaskSweepPoint(
                mask_rate=float(mask_rate),
                attack_success_rate=float(np.mean(asrs)),
                actual_queries=int(np.mean(query_counts)),
                planned_timesteps=total_timesteps,
                data_overhead=float(np.mean(data_overheads)),
                time_overhead=float(np.mean(time_overheads)),
            )
        )
    return points
