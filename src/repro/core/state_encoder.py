"""StateEncoder: GRU sequence autoencoder (paper Appendix A.2 / Algorithm 2).

The RL state at timestep ``t`` is the full history of observations and
actions, whose length grows with ``t``; the MLP actor and critic need a
fixed-size input.  The StateEncoder is a two-layer GRU that maps an
arbitrarily long sequence of (size, delay) pairs to a fixed-size hidden
representation.  It is pre-trained as the encoder half of a Seq2Seq
autoencoder on synthetic flows with maximal variability
(``p ~ U(-1, 1)``, ``phi ~ U(0, 1)``), using random truncation lengths so it
can encode prefixes of any length, and evaluated by the normalised
reconstruction error (Figure 13).

All recurrent compute here runs on the fused packed-gate kernels
(:func:`repro.nn.functional.gru_sequence` inside :meth:`StateEncoder.forward`
for pre-training and full re-encodes, :func:`repro.nn.functional.gru_cell`
inside :meth:`StateEncoder.step_pairs` for the incremental rollout path).
Both inference paths execute under :func:`repro.nn.row_consistent_matmul`,
so the incremental state stays bit-identical to a full re-encode regardless
of how environments are batched or how sequence GEMMs are hoisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..utils.logging import TrainingLogger
from ..utils.rng import ensure_rng

__all__ = [
    "EncoderState",
    "StateEncoder",
    "StateDecoder",
    "Seq2SeqAutoencoder",
    "make_synthetic_flow_dataset",
    "pretrain_state_encoder",
    "reconstruction_nmae_by_length",
]


@dataclass
class EncoderState:
    """Per-environment incremental GRU state for one history stream.

    ``hidden`` holds the per-layer hidden vectors as a ``(num_layers,
    hidden_size)`` array.  Folding one (size, delay) pair at a time through
    :meth:`StateEncoder.step_pairs` keeps this state equal to what a full
    :meth:`StateEncoder.encode_pairs` re-encode of the whole history would
    produce, turning the per-episode encoding cost from O(T²) into O(T).
    """

    hidden: np.ndarray

    @property
    def representation(self) -> np.ndarray:
        """Fixed-size encoding of everything folded in so far (top layer)."""
        return self.hidden[-1]


class StateEncoder(nn.Module):
    """Two-layer GRU mapping (time, 2) sequences to a fixed-size vector."""

    def __init__(self, hidden_size: int = 32, num_layers: int = 2, rng=None) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.gru = nn.GRU(2, hidden_size, num_layers=num_layers, rng=ensure_rng(rng))

    def forward(self, sequence: nn.Tensor) -> nn.Tensor:
        """Encode a (batch, time, 2) sequence into a (batch, hidden) representation."""
        outputs, hidden = self.gru(sequence)
        return hidden[-1]

    def encode_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Encode a single (time, 2) array without tracking gradients.

        An empty history encodes to the all-zeros vector, which is how the
        agent represents "no actions taken yet" at the first timestep.
        """
        pairs = np.asarray(pairs, dtype=np.float64)
        if pairs.size == 0:
            return np.zeros(self.hidden_size)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"expected (time, 2) pairs, got shape {pairs.shape}")
        with nn.no_grad(), nn.row_consistent_matmul():
            encoded = self.forward(nn.Tensor(pairs[None, :, :]))
        return encoded.data[0]

    # ------------------------------------------------------------------ #
    # Incremental (O(1) per tick) encoding
    # ------------------------------------------------------------------ #
    def initial_state(self, dtype=np.float64) -> EncoderState:
        """Zero state representing an empty history (encodes to zeros).

        ``dtype`` is the storage dtype of the incremental state — float64
        everywhere except the serving tier's opt-in float32 path, which
        keeps session state in f32 between flushes.
        """
        return EncoderState(
            hidden=np.zeros((self.num_layers, self.hidden_size), dtype=dtype)
        )

    def step_pairs(
        self, pairs: np.ndarray, states: Sequence[EncoderState]
    ) -> List[EncoderState]:
        """Fold one new (size, delay) pair into each environment's state.

        ``pairs`` is an ``(n_envs, 2)`` batch — the newest observation or
        action of each environment — and ``states`` the matching incremental
        states.  All environments advance through the GRU as a single batched
        forward (one fused ``gru_cell`` node per layer — two GEMMs each);
        thanks to :func:`repro.nn.row_consistent_matmul` the result for each
        row is bit-identical to stepping that environment alone, and
        therefore to a full :meth:`encode_pairs` re-encode of its history.
        """
        pairs = np.asarray(pairs, dtype=np.float64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"expected (n_envs, 2) pairs, got shape {pairs.shape}")
        if pairs.shape[0] != len(states):
            raise ValueError("one state per row of pairs is required")
        hidden = [
            nn.Tensor(np.stack([state.hidden[layer] for state in states]))
            for layer in range(self.num_layers)
        ]
        with nn.no_grad(), nn.row_consistent_matmul():
            new_hidden = self.gru.step(nn.Tensor(pairs), hidden)
        layer_data = [layer.data for layer in new_hidden]
        return [
            EncoderState(hidden=np.stack([data[index] for data in layer_data]))
            for index in range(len(states))
        ]

    def step_pair(self, pair: np.ndarray, state: EncoderState) -> EncoderState:
        """Single-environment convenience wrapper around :meth:`step_pairs`."""
        return self.step_pairs(np.asarray(pair, dtype=np.float64).reshape(1, 2), [state])[0]


class StateDecoder(nn.Module):
    """GRU decoder reconstructing a sequence from the hidden representation."""

    def __init__(self, hidden_size: int = 32, num_layers: int = 2, rng=None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.hidden_size = hidden_size
        self.gru = nn.GRU(hidden_size, hidden_size, num_layers=num_layers, rng=rng)
        self.head = nn.Linear(hidden_size, 2, rng=rng)

    def forward(self, representation: nn.Tensor, length: int) -> nn.Tensor:
        """Decode a (batch, hidden) representation into a (batch, length, 2) sequence."""
        batch = representation.shape[0]
        repeated = nn.Tensor.stack([representation] * length, axis=1)
        outputs, _ = self.gru(repeated)
        flat = outputs.reshape(batch * length, self.hidden_size)
        decoded = self.head(flat)
        return decoded.reshape(batch, length, 2)


class Seq2SeqAutoencoder(nn.Module):
    """Encoder + decoder trained jointly with an MAE reconstruction loss."""

    def __init__(self, hidden_size: int = 32, num_layers: int = 2, rng=None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.encoder = StateEncoder(hidden_size, num_layers, rng=rng)
        self.decoder = StateDecoder(hidden_size, num_layers, rng=rng)

    def forward(self, sequence: nn.Tensor) -> nn.Tensor:
        representation = self.encoder(sequence)
        return self.decoder(representation, sequence.shape[1])


def make_synthetic_flow_dataset(
    n_flows: int = 200, max_length: int = 60, rng=None
) -> np.ndarray:
    """Synthetic normalised flows with maximal variability (Appendix A.2).

    Packet sizes are drawn from U(-1, 1) (signed: both directions) and delays
    from U(0, 1); the first delay is 0 by convention.  Returns an array of
    shape (n_flows, max_length, 2).
    """
    rng = ensure_rng(rng)
    sizes = rng.uniform(-1.0, 1.0, size=(n_flows, max_length))
    delays = rng.uniform(0.0, 1.0, size=(n_flows, max_length))
    delays[:, 0] = 0.0
    return np.stack([sizes, delays], axis=-1)


def pretrain_state_encoder(
    hidden_size: int = 32,
    num_layers: int = 2,
    n_flows: int = 200,
    max_length: int = 60,
    epochs: int = 3,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    rng=None,
    logger: Optional[TrainingLogger] = None,
) -> Tuple[StateEncoder, Seq2SeqAutoencoder, TrainingLogger]:
    """Algorithm 2: train the Seq2Seq autoencoder and return its encoder.

    Mini-batch sequence lengths are sampled uniformly from [1, max_length] so
    the encoder learns to represent prefixes of any length.
    """
    rng = ensure_rng(rng)
    logger = logger or TrainingLogger("state-encoder")
    dataset = make_synthetic_flow_dataset(n_flows, max_length, rng=rng)
    model = Seq2SeqAutoencoder(hidden_size, num_layers, rng=rng)
    optimizer = nn.Adam(model.parameters(), lr=learning_rate)

    model.train()
    for _ in range(epochs):
        order = rng.permutation(n_flows)
        for start in range(0, n_flows, batch_size):
            indices = order[start : start + batch_size]
            length = int(rng.integers(1, max_length + 1))
            batch = dataset[indices, :length, :]
            reconstruction = model(nn.Tensor(batch))
            loss = F.mae_loss(reconstruction, nn.Tensor(batch))
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            logger.log(reconstruction_mae=loss.item(), sequence_length=length)
    model.eval()
    return model.encoder, model, logger


def reconstruction_nmae_by_length(
    autoencoder: Seq2SeqAutoencoder,
    lengths: Sequence[int],
    n_flows: int = 50,
    rng=None,
) -> Dict[int, float]:
    """Normalised MAE of reconstruction per flow length (Figure 13).

    The paper normalises each element's absolute error by the element's
    value, which is numerically unstable for the near-zero entries of
    uniform(-1, 1)/uniform(0, 1) flows; we use the standard aggregate
    normalisation instead, NMAE = sum|s - s_hat| / sum|s| per flow, averaged
    over flows, which measures the same relative-information-loss quantity
    without divide-by-zero pathologies.
    """
    rng = ensure_rng(rng)
    results: Dict[int, float] = {}
    for length in lengths:
        if length < 1:
            raise ValueError("flow lengths must be >= 1")
        flows = make_synthetic_flow_dataset(n_flows, length, rng=rng)
        with nn.no_grad():
            reconstruction = autoencoder(nn.Tensor(flows)).data
        errors = np.abs(flows - reconstruction).sum(axis=(1, 2))
        magnitudes = np.maximum(np.abs(flows).sum(axis=(1, 2)), 1e-9)
        results[int(length)] = float(np.mean(errors / magnitudes))
    return results
