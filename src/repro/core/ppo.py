"""Proximal Policy Optimization update (Algorithm 1, Appendix A.1).

The trainer consumes a full :class:`~repro.core.rollout.RolloutBuffer` and
performs ``update_epochs`` passes of clipped-surrogate policy updates plus
mean-squared-error value updates over ``n_minibatches`` minibatches:

    L_actor  = −E[ min( I_t(θ) Â_t , clip(I_t(θ), 1±ε) Â_t ) ] − c_H · H(π_θ)
    L_critic =  E[ ( V_c(s_t) − R_t )² ]
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import nn, obs
from ..nn import functional as F
from ..obs import _state as _obs_state
from ..utils.rng import ensure_rng
from .actor_critic import Critic, GaussianActor
from .config import AmoebaConfig
from .rollout import MinibatchScratch, RolloutBuffer

__all__ = ["PPOUpdater", "PPOUpdateStats"]


@dataclass(frozen=True)
class PPOUpdateStats:
    """Diagnostics of one PPO update phase."""

    policy_loss: float
    value_loss: float
    entropy: float
    approx_kl: float
    clip_fraction: float


class PPOUpdater:
    """Optimises the actor and critic from collected rollouts."""

    def __init__(
        self,
        actor: GaussianActor,
        critic: Critic,
        config: AmoebaConfig,
        rng=None,
        preallocate: bool = True,
    ) -> None:
        self.actor = actor
        self.critic = critic
        self.config = config
        self._rng = ensure_rng(rng)
        self.preallocate = bool(preallocate)
        self.actor_optimizer = nn.Adam(
            actor.parameters(), lr=config.learning_rate, preallocate=self.preallocate
        )
        self.critic_optimizer = nn.Adam(
            critic.parameters(), lr=config.learning_rate, preallocate=self.preallocate
        )
        # One scratch object serves every epoch of every update() call: the
        # minibatch partition geometry is fixed by the config, so the buffers
        # are allocated once and reused for the run's lifetime.
        self._mb_scratch: Optional[MinibatchScratch] = (
            MinibatchScratch() if self.preallocate else None
        )

    def update(self, buffer: RolloutBuffer) -> PPOUpdateStats:
        """Run the clipped-surrogate update over the buffer's minibatches."""
        config = self.config
        policy_losses = []
        value_losses = []
        entropies = []
        kls = []
        clip_fractions = []

        # Telemetry reads clocks only: it draws from no RNG stream and
        # touches no numeric path, so update results are bit-identical with
        # telemetry on or off.
        telemetry = _obs_state.enabled
        actor_ms = obs.histogram("train.ppo.actor_ms") if telemetry else None
        critic_ms = obs.histogram("train.ppo.critic_ms") if telemetry else None
        with obs.span(
            "train.ppo_update",
            epochs=config.update_epochs,
            minibatches=config.n_minibatches,
        ):
            self._run_epochs(
                buffer,
                policy_losses,
                value_losses,
                entropies,
                kls,
                clip_fractions,
                actor_ms,
                critic_ms,
            )

        return PPOUpdateStats(
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            approx_kl=float(np.mean(kls)),
            clip_fraction=float(np.mean(clip_fractions)),
        )

    def _run_epochs(
        self,
        buffer: RolloutBuffer,
        policy_losses,
        value_losses,
        entropies,
        kls,
        clip_fractions,
        actor_ms=None,
        critic_ms=None,
    ) -> None:
        config = self.config
        for _ in range(config.update_epochs):
            for batch in buffer.minibatches(
                config.n_minibatches, rng=self._rng, scratch=self._mb_scratch
            ):
                states = nn.Tensor(batch.states)
                advantages = nn.Tensor(batch.advantages)
                returns = nn.Tensor(batch.returns)
                old_log_probs = nn.Tensor(batch.log_probs)

                # ---------------- actor ----------------
                t0 = time.perf_counter() if actor_ms is not None else 0.0
                log_probs, entropy = self.actor.log_prob_and_entropy(states, batch.actions)
                ratio = (log_probs - old_log_probs).exp()
                clipped_ratio = ratio.clip(1.0 - config.clip_epsilon, 1.0 + config.clip_epsilon)
                surrogate_raw = ratio * advantages
                surrogate_clipped = clipped_ratio * advantages
                surrogate = nn.Tensor.where(
                    surrogate_raw.data <= surrogate_clipped.data,
                    surrogate_raw,
                    surrogate_clipped,
                )
                policy_loss = -surrogate.mean() - config.entropy_coef * entropy

                self.actor_optimizer.zero_grad()
                policy_loss.backward()
                nn.clip_grad_norm(self.actor.parameters(), config.max_grad_norm)
                self.actor_optimizer.step()
                if actor_ms is not None:
                    actor_ms.observe((time.perf_counter() - t0) * 1000.0)

                # ---------------- critic ----------------
                t0 = time.perf_counter() if critic_ms is not None else 0.0
                values = self.critic(states)
                value_loss = F.mse_loss(values, returns)
                self.critic_optimizer.zero_grad()
                value_loss.backward()
                nn.clip_grad_norm(self.critic.parameters(), config.max_grad_norm)
                self.critic_optimizer.step()
                if critic_ms is not None:
                    critic_ms.observe((time.perf_counter() - t0) * 1000.0)

                with nn.no_grad():
                    approx_kl = float(np.mean(batch.log_probs - log_probs.data))
                    clip_fraction = float(
                        np.mean(np.abs(ratio.data - 1.0) > config.clip_epsilon)
                    )
                policy_losses.append(policy_loss.item())
                value_losses.append(value_loss.item())
                entropies.append(entropy.item())
                kls.append(approx_kl)
                clip_fractions.append(clip_fraction)

        return PPOUpdateStats(
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            approx_kl=float(np.mean(kls)),
            clip_fraction=float(np.mean(clip_fractions)),
        )
