"""Amoeba core: configuration, state encoder, environment, PPO and the agent facade."""

from .actor_critic import Critic, GaussianActor, build_mlp
from .agent import AdversarialResult, Amoeba, EvaluationReport
from .arms_race import ArmsRaceResult, ArmsRaceRound, run_arms_race
from .config import AmoebaConfig
from .env import ActionKind, AdversarialFlowEnv, EpisodeSummary, PendingStep
from .ppo import PPOUpdater, PPOUpdateStats
from .profiles import AdversarialProfile, ProfileDatabase, ProfileEmbeddingResult
from .reward_masking import MaskSweepPoint, expected_queries, reward_mask_sweep
from .rollout import RolloutBuffer, compute_gae
from .state_encoder import (
    EncoderState,
    Seq2SeqAutoencoder,
    StateDecoder,
    StateEncoder,
    make_synthetic_flow_dataset,
    pretrain_state_encoder,
    reconstruction_nmae_by_length,
)
from .vec_env import BatchedEpisodeEncoder, VectorFlowEnv

__all__ = [
    "Amoeba",
    "AdversarialResult",
    "EvaluationReport",
    "AmoebaConfig",
    "AdversarialFlowEnv",
    "EpisodeSummary",
    "ActionKind",
    "PendingStep",
    "VectorFlowEnv",
    "BatchedEpisodeEncoder",
    "EncoderState",
    "GaussianActor",
    "Critic",
    "build_mlp",
    "PPOUpdater",
    "PPOUpdateStats",
    "RolloutBuffer",
    "compute_gae",
    "StateEncoder",
    "StateDecoder",
    "Seq2SeqAutoencoder",
    "pretrain_state_encoder",
    "make_synthetic_flow_dataset",
    "reconstruction_nmae_by_length",
    "AdversarialProfile",
    "ProfileDatabase",
    "ProfileEmbeddingResult",
    "MaskSweepPoint",
    "reward_mask_sweep",
    "expected_queries",
    "ArmsRaceRound",
    "ArmsRaceResult",
    "run_arms_race",
]
