"""Censor-vs-Amoeba arms race (Section 5.6.2, discussed as future work).

The paper notes that a censor may collect the adversarial flows Amoeba
generates, add them to its training set as sensitive samples and retrain the
classifier, nullifying the learned policy and forcing the attacker to retrain
in turn.  Whether this iterative game reaches an equilibrium is left open.

This module implements that loop so the question can be studied empirically
on the synthetic substrate:

1. the censor trains on its dataset (plus any adversarial flows collected in
   previous rounds, labelled as censored);
2. the attacker trains a fresh Amoeba agent against the updated censor;
3. the attacker's held-out ASR and the censor's detection accuracy are
   recorded;
4. the censor harvests (a sample of) the attacker's adversarial flows and the
   loop repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..censors.base import CensorClassifier
from ..eval.metrics import classifier_detection_report
from ..features.representation import FlowNormalizer
from ..flows.flow import Flow, FlowLabel
from ..utils.rng import ensure_rng, spawn_rngs
from .agent import Amoeba
from .config import AmoebaConfig

__all__ = ["ArmsRaceRound", "ArmsRaceResult", "run_arms_race"]


@dataclass(frozen=True)
class ArmsRaceRound:
    """Metrics of one censor-retraining / attacker-retraining iteration."""

    round_index: int
    censor_accuracy: float
    censor_f1: float
    attack_success_rate: float
    data_overhead: float
    collected_adversarial_flows: int


@dataclass(frozen=True)
class ArmsRaceResult:
    """Full trajectory of the arms race."""

    rounds: tuple

    def asr_trajectory(self) -> List[float]:
        return [round_.attack_success_rate for round_ in self.rounds]

    def accuracy_trajectory(self) -> List[float]:
        return [round_.censor_accuracy for round_ in self.rounds]

    def attacker_dominates(self) -> bool:
        """Did the attacker keep a majority ASR in the final round?"""
        return self.rounds[-1].attack_success_rate >= 0.5


def run_arms_race(
    censor_factory: Callable[[], CensorClassifier],
    normalizer: FlowNormalizer,
    clf_train_flows: Sequence[Flow],
    attack_train_flows: Sequence[Flow],
    test_flows: Sequence[Flow],
    eval_flows: Sequence[Flow],
    n_rounds: int = 3,
    amoeba_timesteps: int = 1500,
    harvest_per_round: int = 30,
    config: Optional[AmoebaConfig] = None,
    eval_batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    transport: Optional[str] = None,
    rng=None,
) -> ArmsRaceResult:
    """Run ``n_rounds`` of censor-retrains / attacker-retrains.

    Parameters
    ----------
    censor_factory:
        Callable building a *fresh, unfitted* censor each round (the censor
        retrains from scratch on the augmented dataset).
    clf_train_flows:
        The censor's own labelled traffic (both classes).
    attack_train_flows:
        Censored flows the attacker trains on.
    test_flows:
        Labelled flows for measuring the censor's detection performance.
    eval_flows:
        Censored flows for measuring the attacker's ASR.
    harvest_per_round:
        Number of adversarial flows the censor collects per round and adds
        (labelled censored) to its next training set.
    eval_batch_size:
        Number of flows attacked in lockstep when measuring the attacker's
        ASR each round; plumbed into ``config.eval_batch_size`` so every
        round's batched evaluation picks it up (``None`` keeps the agent's
        own ``max(n_envs, 8)`` sizing).
    workers:
        When set, each round's rollout collection is sharded across that
        many worker processes (``Amoeba.train(workers=...)``).
    transport:
        Worker placement spec passed through to ``Amoeba.train`` (fork
        default; ``"tcp://host:port,..."`` for cross-host collection).
    """
    if n_rounds < 1:
        raise ValueError("n_rounds must be >= 1")
    rng = ensure_rng(rng)
    config = config or AmoebaConfig.for_tor()
    if eval_batch_size is not None:
        config = config.with_overrides(eval_batch_size=eval_batch_size)

    collected: List[Flow] = []
    rounds: List[ArmsRaceRound] = []
    for round_index, round_rng in enumerate(spawn_rngs(rng, n_rounds)):
        # 1. Censor retrains on its capture plus harvested adversarial flows.
        censor = censor_factory()
        training_flows = list(clf_train_flows) + collected
        training_labels = [flow.label for flow in clf_train_flows] + [FlowLabel.CENSORED] * len(collected)
        censor.fit(training_flows, labels=training_labels)
        detection = classifier_detection_report(censor, test_flows)

        # 2. Attacker trains a fresh agent against the updated censor.
        agent = Amoeba(censor, normalizer, config, rng=round_rng)
        agent.train(
            attack_train_flows,
            total_timesteps=amoeba_timesteps,
            workers=workers,
            transport=transport,
        )
        report = agent.evaluate(eval_flows)

        # 3. Censor harvests a uniform sample of this round's adversarial
        # flows.  Sampling with the round RNG keeps the harvest unbiased
        # (a head slice would always favour the first eval flows) and
        # seed-controlled.
        n_harvest = min(harvest_per_round, len(report.results))
        chosen = round_rng.choice(len(report.results), size=n_harvest, replace=False)
        harvested = [report.results[int(index)].adversarial_flow for index in np.sort(chosen)]
        collected.extend(harvested)

        rounds.append(
            ArmsRaceRound(
                round_index=round_index,
                censor_accuracy=detection["accuracy"],
                censor_f1=detection["f1"],
                attack_success_rate=report.attack_success_rate,
                data_overhead=report.data_overhead,
                collected_adversarial_flows=len(collected),
            )
        )
    return ArmsRaceResult(rounds=tuple(rounds))
