"""Vectorized environment stepping: one censor query batch per tick.

The seed training loop stepped ``n_envs`` :class:`AdversarialFlowEnv`
instances one at a time, issuing one ``censor.predict_score`` call per
environment per step.  :class:`VectorFlowEnv` drives the same environments
through their two-phase step API instead:

1. **propose** — every environment advances its (deterministic) emulator and
   reports which flows the censor still has to score (the adversarial prefix
   of every unmasked step, plus the finished adversarial flow of every
   terminating episode);
2. **score** — all pending flows across all environments go through a single
   batched ``predict_scores`` call;
3. **apply** — each environment folds its slice of the scores back into the
   reward and (when finished) its episode summary.

Per-flow query-count semantics are preserved exactly (one query per scored
flow, Figures 7–9): batching changes *how many calls* reach the censor, not
*how many flows* it scores.  Masked steps never contribute a prefix, so
reward masking still suppresses queries (Section 5.5.3).

:class:`BatchedEpisodeEncoder` is the companion state tracker: it maintains
per-environment incremental :class:`~repro.core.state_encoder.EncoderState`
pairs (observation stream and action stream) and folds only the newest
(size, delay) pair per tick as one ``(n_envs, 2)`` GRU step, replacing the
seed's O(T²)-per-episode full-history re-encode with O(T).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .env import AdversarialFlowEnv, PendingStep
from .state_encoder import EncoderState, StateEncoder

__all__ = ["VectorFlowEnv", "BatchedEpisodeEncoder", "build_envs_from_seed_tree"]


def build_envs_from_seed_tree(
    censor, normalizer, config, flows, seed_tree
) -> List[AdversarialFlowEnv]:
    """One :class:`AdversarialFlowEnv` per ``(env, noise)`` seed pair.

    The single construction point for every collection path (in-process
    training, benchmarks, sharded workers): slot ``i`` gets a generator from
    the *env* stream of pair ``i`` of a
    :func:`repro.utils.rng.collection_seed_tree`, so environments built from
    the same tree behave bit-identically wherever they are hosted.
    """
    return [
        AdversarialFlowEnv(
            censor, normalizer, config, flows, rng=np.random.default_rng(env_seq)
        )
        for env_seq, _ in seed_tree
    ]


class VectorFlowEnv:
    """Steps N adversarial environments with one censor batch per tick.

    Parameters
    ----------
    envs:
        The environments to drive.  They must all share the same censor
        instance (per-environment configs and RNG streams may differ).
    auto_reset:
        When ``True`` (the training default), an environment that finishes
        its episode is reset immediately and the returned observation is the
        new episode's initial observation; the pre-reset observation is kept
        in ``info["terminal_observation"]``.
    """

    def __init__(self, envs: Sequence[AdversarialFlowEnv], auto_reset: bool = True) -> None:
        envs = list(envs)
        if not envs:
            raise ValueError("VectorFlowEnv needs at least one environment")
        censor = envs[0].censor
        if any(env.censor is not censor for env in envs):
            raise ValueError("all environments must share the same censor instance")
        self._envs = envs
        self._censor = censor
        self._auto_reset = auto_reset

    # ------------------------------------------------------------------ #
    @property
    def n_envs(self) -> int:
        return len(self._envs)

    @property
    def envs(self) -> List[AdversarialFlowEnv]:
        return self._envs

    @property
    def observation_dim(self) -> int:
        return self._envs[0].observation_dim

    @property
    def action_dim(self) -> int:
        return self._envs[0].action_dim

    # ------------------------------------------------------------------ #
    def reset(self) -> np.ndarray:
        """Reset every environment; returns the (N, obs_dim) observations."""
        return np.stack([env.reset() for env in self._envs])

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict]]:
        """Advance all environments by one tick.

        Returns ``(observations, rewards, dones, infos)`` with shapes
        ``(N, obs_dim)``, ``(N,)``, ``(N,)`` and a list of N info dicts.
        """
        actions = np.asarray(actions, dtype=np.float64)
        if actions.shape != (self.n_envs, self.action_dim):
            raise ValueError(
                f"actions must have shape {(self.n_envs, self.action_dim)}, got {actions.shape}"
            )
        observations, rewards, dones, infos = self._step_envs(
            list(range(self.n_envs)), actions
        )
        return observations, rewards, dones, infos

    def step_subset(
        self, indices: Sequence[int], actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict]]:
        """Advance only the environments named by ``indices``.

        Used by batched evaluation, where episodes finish at different times
        and finished environments simply drop out of the batch (auto-reset is
        never applied on this path).  Results align with ``indices``.
        """
        actions = np.asarray(actions, dtype=np.float64)
        if actions.shape != (len(indices), self.action_dim):
            raise ValueError(
                f"actions must have shape {(len(indices), self.action_dim)}, got {actions.shape}"
            )
        return self._step_envs(list(indices), actions, allow_auto_reset=False)

    # ------------------------------------------------------------------ #
    def _step_envs(
        self,
        indices: List[int],
        actions: np.ndarray,
        allow_auto_reset: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict]]:
        # Phase 1: deterministic transitions, collecting flows to score.
        pendings: List[PendingStep] = []
        flows = []
        counts = []
        for row, index in enumerate(indices):
            pending = self._envs[index].propose(actions[row])
            pendings.append(pending)
            to_score = pending.flows_to_score
            counts.append(len(to_score))
            flows.extend(to_score)

        # Phase 2: one batched censor call for the whole tick (an all-masked
        # tick scores nothing and performs no queries).
        scores = self._censor.predict_scores(flows)

        # Phase 3: fold scores back into rewards, summaries and resets.
        observations = np.zeros((len(indices), self.observation_dim))
        rewards = np.zeros(len(indices))
        dones = np.zeros(len(indices), dtype=bool)
        infos: List[Dict] = []
        cursor = 0
        for row, index in enumerate(indices):
            env = self._envs[index]
            env_scores = scores[cursor : cursor + counts[row]]
            cursor += counts[row]
            observation, reward, done, info = env.apply(pendings[row], env_scores)
            if done and self._auto_reset and allow_auto_reset:
                info["terminal_observation"] = observation
                observation = env.reset()
            observations[row] = observation
            rewards[row] = reward
            dones[row] = done
            infos.append(info)
        return observations, rewards, dones, infos


class BatchedEpisodeEncoder:
    """Incremental dual-stream state tracker for N parallel environments.

    The RL state is ``s_t = E(x_1:t) || E(a_1:t)`` (Section 4.3): one GRU
    encoding of the observation history and one of the action history.  This
    tracker holds an :class:`EncoderState` per environment and stream, and
    advances all environments per tick with exactly two batched GRU steps
    (one per stream) regardless of episode length.
    """

    def __init__(self, encoder: StateEncoder, n_envs: int) -> None:
        if n_envs < 1:
            raise ValueError("n_envs must be >= 1")
        self._encoder = encoder
        self.n_envs = n_envs
        self._observation_states: List[EncoderState] = [
            encoder.initial_state() for _ in range(n_envs)
        ]
        self._action_states: List[EncoderState] = [
            encoder.initial_state() for _ in range(n_envs)
        ]

    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        return 2 * self._encoder.hidden_size

    def states(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Current ``s_t`` for the given environments (all when omitted)."""
        if indices is None:
            indices = range(self.n_envs)
        return np.stack(
            [
                np.concatenate(
                    [
                        self._observation_states[i].representation,
                        self._action_states[i].representation,
                    ]
                )
                for i in indices
            ]
        )

    def snapshot(self) -> Dict[str, List[np.ndarray]]:
        """Copy of the tracked per-environment hidden states (picklable)."""
        return {
            "observation": [state.hidden.copy() for state in self._observation_states],
            "action": [state.hidden.copy() for state in self._action_states],
        }

    def restore(self, snapshot: Dict[str, List[np.ndarray]]) -> None:
        """Inverse of :meth:`snapshot`."""
        if len(snapshot["observation"]) != self.n_envs or len(snapshot["action"]) != self.n_envs:
            raise ValueError("snapshot does not match this tracker's n_envs")
        self._observation_states = [
            EncoderState(hidden=np.asarray(hidden).copy()) for hidden in snapshot["observation"]
        ]
        self._action_states = [
            EncoderState(hidden=np.asarray(hidden).copy()) for hidden in snapshot["action"]
        ]

    # ------------------------------------------------------------------ #
    def reset_all(self, observations: np.ndarray) -> np.ndarray:
        """Start fresh episodes everywhere from the initial observations."""
        observations = np.asarray(observations, dtype=np.float64)
        self._observation_states = self._encoder.step_pairs(
            observations, [self._encoder.initial_state() for _ in range(self.n_envs)]
        )
        self._action_states = [self._encoder.initial_state() for _ in range(self.n_envs)]
        return self.states()

    def step(
        self,
        recorded_actions: np.ndarray,
        next_observations: np.ndarray,
        dones: np.ndarray,
        indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Fold one tick into the tracked states; returns the new ``s_t``.

        ``recorded_actions`` are the environments' *emitted* normalised
        actions (what :class:`AdversarialFlowEnv` appends to its action
        history, not the raw policy output).  For environments flagged done,
        both streams are reset and ``next_observations`` is interpreted as
        the auto-reset episode's initial observation, mirroring what a full
        re-encode of the fresh histories would produce.
        """
        if indices is None:
            indices = list(range(self.n_envs))
        else:
            indices = list(indices)
        recorded_actions = np.asarray(recorded_actions, dtype=np.float64)
        next_observations = np.asarray(next_observations, dtype=np.float64)
        dones = np.asarray(dones, dtype=bool).reshape(-1)
        if not (len(indices) == len(recorded_actions) == len(next_observations) == len(dones)):
            raise ValueError("indices, actions, observations and dones must align")

        action_states = [self._action_states[i] for i in indices]
        new_action_states = self._encoder.step_pairs(recorded_actions, action_states)
        observation_states = []
        for row, index in enumerate(indices):
            if dones[row]:
                # New episode: both histories restart from the empty state.
                new_action_states[row] = self._encoder.initial_state()
                observation_states.append(self._encoder.initial_state())
            else:
                observation_states.append(self._observation_states[index])
        new_observation_states = self._encoder.step_pairs(
            next_observations, observation_states
        )
        for row, index in enumerate(indices):
            self._action_states[index] = new_action_states[row]
            self._observation_states[index] = new_observation_states[row]
        return self.states(indices)
