"""Metrics registry: counters, gauges and fixed-bucket log-scale histograms.

The registry is the numeric half of the telemetry tier: every instrument is
addressable by a dotted name plus a small label set, holds O(1) state (a
float, or a fixed bucket array — never an unbounded list), and merges
mechanically so per-worker registries can be folded across the fork
boundary:

* **counters** sum,
* **gauges** take the last write,
* **histograms** add bucket counts (same bucket edges required).

Instruments are created on first use and returned by identity afterwards,
so hot paths can capture the instrument once and call ``inc``/``observe``
without a registry lookup per event.  Creation is guarded by a lock; the
record operations themselves are single bytecode-level float updates, which
is sufficient for this codebase's one-recording-thread-per-process model
(the compiled GEMM worker threads never touch the registry).

Naming scheme (documented in the README "Telemetry" section): dotted
``tier.component.metric`` names — ``serve.flush_size``,
``train.ppo.actor_ms``, ``nn.gemm_ms`` — with labels reserved for bounded
cardinality dimensions (``worker``, ``kernel``, ``cell``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "log_bucket_edges"]

LabelsKey = Tuple[Tuple[str, str], ...]

# Default histogram geometry: first finite upper edge 1e-3, doubling per
# bucket, 36 finite buckets (+1 overflow) -> upper edges 1e-3 .. ~3.4e7.
# In milliseconds that spans 1 microsecond to ~9.5 hours; as a dimensionless
# scale it covers every batch size / thread count this repo produces.
DEFAULT_LO = 1e-3
DEFAULT_GROWTH = 2.0
DEFAULT_N_BUCKETS = 36


def log_bucket_edges(
    lo: float = DEFAULT_LO,
    growth: float = DEFAULT_GROWTH,
    n_buckets: int = DEFAULT_N_BUCKETS,
) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper edges ``lo * growth**i``."""
    if lo <= 0:
        raise ValueError("lo must be positive")
    if growth <= 1.0:
        raise ValueError("growth must be > 1")
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    return tuple(lo * growth**i for i in range(n_buckets))


def _labels_key(labels: Mapping[str, str]) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity (name + labels) of every metric kind."""

    kind = "abstract"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, labels={dict(self.labels)!r})"


class Counter(_Instrument):
    """Monotonically increasing sum (merge: add)."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelsKey) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for signed values")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels_dict,
            "value": self._value,
        }


class Gauge(_Instrument):
    """Last-write-wins scalar (merge: overwrite)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelsKey) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels_dict,
            "value": self._value,
        }


class Histogram(_Instrument):
    """Fixed log-scale-bucket histogram: O(n_buckets) memory forever.

    ``edges`` are *inclusive upper bounds* of the finite buckets (Prometheus
    ``le`` semantics); one extra overflow bucket catches everything above
    the last edge.  Non-positive observations land in the first bucket —
    the log scale has no room for them, and the exact minimum is tracked
    separately anyway.
    """

    kind = "histogram"
    __slots__ = ("edges", "_counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, labels: LabelsKey, edges: Optional[Iterable[float]] = None
    ) -> None:
        super().__init__(name, labels)
        self.edges: Tuple[float, ...] = (
            log_bucket_edges() if edges is None else tuple(float(e) for e in edges)
        )
        if not self.edges or any(
            b <= a for a, b in zip(self.edges, self.edges[1:])
        ):
            raise ValueError("histogram edges must be a strictly increasing sequence")
        self._counts = [0] * (len(self.edges) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left returns the first edge >= value: exact edge values are
        # inclusive (le semantics), values beyond the last edge overflow.
        self._counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def bucket_counts(self) -> List[int]:
        return list(self._counts)

    def percentile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-th percentile (0..100)."""
        if self.count == 0:
            return 0.0
        target = max(1, int(round(q / 100.0 * self.count)))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.edges):
                    return self.max  # overflow bucket: best bound we have
                return min(self.edges[index], self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different bucket edges "
                f"({self.name!r}: {len(self.edges)} vs {len(other.edges)} edges)"
            )
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels_dict,
            "edges": list(self.edges),
            "counts": list(self._counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """Process-wide instrument store keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], _Instrument] = {}
        self._lock = threading.Lock()
        # Bumped by reset(): hot paths that cache instrument references
        # compare generations to know when a cached reference went stale
        # (take_snapshot zeroes in place and does NOT bump — identities
        # survive the fork-boundary fold).  A plain attribute, not a
        # property: the per-event cache checks read it.
        self.generation = 0

    # ------------------------------------------------------------------ #
    # Get-or-create
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, _labels_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(key)
                if instrument is None:
                    instrument = cls(name, key[1], **kwargs)
                    self._metrics[key] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, edges: Optional[Iterable[float]] = None, **labels: str
    ) -> Histogram:
        histogram = self._get_or_create(Histogram, name, labels, edges=edges)
        if edges is not None and histogram.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already exists with different bucket edges"
            )
        return histogram

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._metrics)

    def instruments(self) -> List[_Instrument]:
        """All instruments, sorted by (name, labels) for stable rendering."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def series(self, name: str) -> List[_Instrument]:
        """Every labelled instrument registered under ``name``."""
        return [
            self._metrics[key] for key in sorted(self._metrics) if key[0] == name
        ]

    def get(self, name: str, **labels: str) -> Optional[_Instrument]:
        return self._metrics.get((name, _labels_key(labels)))

    # ------------------------------------------------------------------ #
    # Snapshot / merge (the fork-boundary protocol)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-able dump of every instrument (stable order)."""
        return [instrument.snapshot() for instrument in self.instruments()]

    def take_snapshot(self) -> List[Dict[str, object]]:
        """Snapshot, then zero the accumulating state: the worker-side half
        of the fold protocol.

        Counters and histograms restart from zero so repeated folds never
        double-count (gauges are last-write-wins and keep their value).
        Instruments are reset *in place* — hot paths hold direct references
        to them, which must stay live across a fold.
        """
        with self._lock:
            payload = [instrument.snapshot() for instrument in self.instruments()]
            for instrument in self._metrics.values():
                if isinstance(instrument, Counter):
                    instrument._value = 0.0
                elif isinstance(instrument, Histogram):
                    instrument._counts = [0] * (len(instrument.edges) + 1)
                    instrument.count = 0
                    instrument.sum = 0.0
                    instrument.min = float("inf")
                    instrument.max = float("-inf")
        return payload

    def merge_snapshot(
        self,
        entries: Iterable[Mapping[str, object]],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a snapshot (typically from a forked worker) into this registry.

        ``extra_labels`` are added to every entry — the sharded engines tag
        worker-side metrics with ``worker=<index>`` so per-worker health
        stays visible after the merge.
        """
        extra = dict(extra_labels or {})
        for entry in entries:
            labels = {**dict(entry.get("labels") or {}), **extra}
            kind = entry["kind"]
            name = str(entry["name"])
            if kind == "counter":
                self.counter(name, **labels).inc(float(entry["value"]))
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(entry["value"]))
            elif kind == "histogram":
                target = self.histogram(name, edges=entry["edges"], **labels)
                other = Histogram(name, target.labels, edges=entry["edges"])
                other._counts = [int(c) for c in entry["counts"]]
                other.count = int(entry["count"])
                other.sum = float(entry["sum"])
                if other.count:
                    other.min = float(entry["min"])
                    other.max = float(entry["max"])
                target.merge(other)
            else:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")

    def reset(self) -> None:
        """Drop every instrument (tests and CLI runs)."""
        with self._lock:
            self._metrics.clear()
            self.generation += 1
