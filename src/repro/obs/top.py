"""``repro-amoeba top``: a live terminal view over a ``/metrics`` endpoint.

Polls the telemetry service's Prometheus text exposition on an interval and
renders the serving/transport vitals a driver operator watches: decision
throughput, deadline-miss rate, scheduler queue depth, transport frame
traffic, heartbeat RTT and worker restarts.  Rates are derived
client-side from successive scrapes (counter deltas / elapsed wall time),
so the view needs nothing beyond the scrape endpoint — it works against
any process started with ``REPRO_TELEMETRY_PORT`` or
``obs.serve_telemetry``.

Pure functions all the way down: :func:`fetch_metrics` does the HTTP,
:func:`render_top` turns two successive samples into the text frame, and
:func:`run_top` loops them — tests drive ``run_top`` with a stub fetcher
and a capturing ``out``.
"""

from __future__ import annotations

import sys
import time
import urllib.request
from typing import Callable, Dict, Mapping, Optional, Tuple

from .export import parse_prometheus_text

__all__ = ["fetch_metrics", "series_sum", "bucket_quantile", "render_top", "run_top"]


def fetch_metrics(url: str, timeout: float = 5.0) -> Dict[str, float]:
    """Scrape ``url`` (a ``/metrics`` endpoint) into ``{series_key: value}``."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8")
    return parse_prometheus_text(text)


def _name_of(series_key: str) -> str:
    return series_key.split("{", 1)[0]


def series_sum(series: Mapping[str, float], name: str) -> float:
    """Sum one metric across its label sets (``name`` is the exposition name)."""
    return sum(value for key, value in series.items() if _name_of(key) == name)


def series_max(series: Mapping[str, float], name: str) -> float:
    values = [value for key, value in series.items() if _name_of(key) == name]
    return max(values) if values else 0.0


def bucket_quantile(series: Mapping[str, float], name: str, q: float) -> float:
    """Quantile estimate from ``<name>_bucket`` cumulative ``le`` lines.

    Buckets fold across label sets (the fleet-wide distribution); the
    estimate is the upper edge of the first bucket whose cumulative count
    crosses the target rank — the standard Prometheus
    ``histogram_quantile`` shape, minus interpolation.
    """
    prefix = name + "_bucket"
    buckets: Dict[float, float] = {}
    for key, value in series.items():
        if _name_of(key) != prefix or "le=" not in key:
            continue
        le_raw = key.split('le="', 1)[1].split('"', 1)[0]
        le = float("inf") if le_raw == "+Inf" else float(le_raw)
        buckets[le] = buckets.get(le, 0.0) + value
    if not buckets:
        return 0.0
    edges = sorted(buckets)
    total = buckets[edges[-1]]
    if total <= 0:
        return 0.0
    target = (q / 100.0) * total
    for edge in edges:
        if buckets[edge] >= target:
            return edge
    return edges[-1]


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if abs(value) >= 1000 or value == int(value):
        return f"{value:,.0f}"
    return f"{value:.2f}"


def _rate(
    series: Mapping[str, float],
    previous: Optional[Mapping[str, float]],
    name: str,
    elapsed_s: float,
) -> float:
    if previous is None or elapsed_s <= 0:
        return 0.0
    delta = series_sum(series, name) - series_sum(previous, name)
    return max(delta, 0.0) / elapsed_s


def render_top(
    series: Mapping[str, float],
    previous: Optional[Mapping[str, float]] = None,
    elapsed_s: float = 0.0,
) -> str:
    """One text frame of the live view from a scrape (and the previous one)."""
    decisions = series_sum(series, "serve_decisions_total")
    misses = series_sum(series, "serve_deadline_misses_total")
    miss_rate = misses / decisions if decisions else 0.0
    rows: Tuple[Tuple[str, str], ...] = (
        ("decisions", f"{_fmt(decisions)}  ({_fmt(_rate(series, previous, 'serve_decisions_total', elapsed_s))}/s)"),
        ("deadline misses", f"{_fmt(misses)}  ({miss_rate:.1%} of decisions)"),
        ("flushes", _fmt(series_sum(series, "serve_flushes_total"))),
        ("queue depth", _fmt(series_max(series, "serve_queue_depth"))),
        ("frames sent", f"{_fmt(series_sum(series, 'transport_frames_sent_total'))}  ({_fmt(_rate(series, previous, 'transport_frames_sent_total', elapsed_s))}/s)"),
        ("frames received", _fmt(series_sum(series, "transport_frames_recv_total"))),
        ("heartbeat rtt p99", f"{_fmt(bucket_quantile(series, 'transport_heartbeat_rtt_ms', 99.0))} ms"),
        ("worker restarts", _fmt(series_sum(series, "distrib_worker_restarts_total"))),
        ("collect ticks", _fmt(series_sum(series, "collect_ticks_total"))),
        ("alerts fired", _fmt(series_sum(series, "obs_alerts_total"))),
    )
    width = max(len(label) for label, _ in rows)
    lines = ["repro-amoeba top"]
    lines.extend(f"  {label.ljust(width)}  {value}" for label, value in rows)
    return "\n".join(lines)


def run_top(
    url: str,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
    fetch: Callable[[str], Dict[str, float]] = fetch_metrics,
    out: Callable[[str], None] = print,
    clear: Optional[bool] = None,
) -> int:
    """Poll ``url`` and render frames until ``iterations`` runs out (or ^C).

    Returns the number of successful scrapes.  A failed scrape renders an
    error frame and keeps polling — the endpoint may simply not be up yet.
    ``clear=None`` auto-detects a tty (ANSI home+clear between frames).
    """
    if clear is None:
        clear = sys.stdout.isatty()
    previous: Optional[Dict[str, float]] = None
    previous_at = 0.0
    rendered = 0
    remaining = iterations
    try:
        while remaining is None or remaining > 0:
            if remaining is not None:
                remaining -= 1
            now = time.monotonic()
            try:
                series = fetch(url)
            except OSError as exc:
                out(f"repro-amoeba top: scrape of {url} failed: {exc}")
            else:
                frame = render_top(
                    series, previous, elapsed_s=(now - previous_at) if previous else 0.0
                )
                out(("\x1b[H\x1b[2J" + frame) if clear else frame)
                previous, previous_at = series, now
                rendered += 1
            if remaining is None or remaining > 0:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return rendered
