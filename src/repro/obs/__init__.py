"""Unified telemetry tier: metrics registry, tracing spans, exporters.

The observability subsystem shared by every execution tier — PPO training
(`repro.core`), sharded/pipelined collection (`repro.distrib`), the compiled
nn backends (`repro.nn.backend`) and the continuous-batching serving tier
(`repro.serve`):

* a process-wide :class:`~repro.obs.metrics.MetricsRegistry` of counters,
  gauges and fixed-bucket log-scale histograms, addressable by dotted names
  plus labels (:func:`counter` / :func:`gauge` / :func:`histogram`);
* :func:`span` context-manager tracing with monotonic-clock timing, nesting
  and per-span metadata, compiled to a shared no-op singleton when
  telemetry is disabled;
* exporters: a JSONL event sink, a Prometheus text-exposition snapshot, and
  the ``repro-amoeba telemetry`` CLI that renders a live summary or a trace
  profile of one training iteration / serving flush.

**Off by default.**  Enable with ``REPRO_TELEMETRY=1`` in the environment
(inherited by forked workers) or programmatically with :func:`enable` —
*before* constructing sharded engines, so forked workers inherit the flag.
The overhead contract is enforced by ``benchmarks/bench_obs_overhead.py``:
enabled-telemetry training and serving throughput stay within 5% of
disabled.

**Observing never changes behaviour.**  Telemetry reads clocks and writes
its own state; it draws from no RNG stream and touches no numeric path, so
rollouts and served decision streams are bit-identical with telemetry on or
off (asserted in ``tests/test_obs.py``).  The telemetry tier sits
deliberately *outside* the bit-equivalence ladder: it is exempt from
nothing because it participates in nothing.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional

from . import _state
from .export import JsonlSink, parse_prometheus_text, prometheus_text, read_jsonl
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, log_bucket_edges
from .trace import NULL_SPAN, NullSpan, Span, SpanRecord, Tracer, render_spans

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "registry",
    "tracer",
    "counter",
    "gauge",
    "histogram",
    "span",
    "remote_span",
    "trace_context",
    "take_snapshot",
    "merge_snapshot",
    "take_span_snapshot",
    "merge_spans",
    "take_worker_telemetry",
    "merge_worker_telemetry",
    "summary_text",
    "serve_telemetry",
    "maybe_serve_telemetry",
    "active_telemetry",
    "shutdown_telemetry",
    "TelemetryService",
    "SloRule",
    "SloAlert",
    "SloWatchdog",
    "default_slo_rules",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_bucket_edges",
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "SpanRecord",
    "render_spans",
    "JsonlSink",
    "read_jsonl",
    "prometheus_text",
    "parse_prometheus_text",
]


# Span-name -> duration histogram cache: a registry lookup per finished span
# (label-key build + dict probe) is measurable on sub-millisecond serve
# flushes, while the cached reference is a plain dict hit.  Invalidated by
# generation when reset() drops the instruments.
_SPAN_HISTS: Dict[str, Histogram] = {}
_SPAN_HISTS_GENERATION = [-1]


def _record_span_duration(record: SpanRecord) -> None:
    """Feed every finished span's duration into a ``span.<name>`` histogram."""
    generation = _REGISTRY.generation
    if _SPAN_HISTS_GENERATION[0] != generation:
        _SPAN_HISTS.clear()
        _SPAN_HISTS_GENERATION[0] = generation
    hist = _SPAN_HISTS.get(record.name)
    if hist is None:
        hist = _SPAN_HISTS[record.name] = _REGISTRY.histogram("span." + record.name)
    hist.observe(record.duration_ms)


_REGISTRY = MetricsRegistry()
_TRACER = Tracer(on_finish=_record_span_duration)


# --------------------------------------------------------------------------- #
# Switch
# --------------------------------------------------------------------------- #
def enable() -> None:
    """Turn telemetry on process-wide (spans, hot-path histograms).

    Call before forking sharded engines/servers so workers inherit the flag
    (or set ``REPRO_TELEMETRY=1``, which covers every process).
    """
    _state.enabled = True


def disable() -> None:
    _state.enabled = False


def enabled() -> bool:
    return _state.enabled


def reset() -> None:
    """Clear the registry and the span buffer (tests, CLI runs)."""
    _REGISTRY.reset()
    _TRACER.reset()


# --------------------------------------------------------------------------- #
# Global instruments
# --------------------------------------------------------------------------- #
def registry() -> MetricsRegistry:
    return _REGISTRY


def tracer() -> Tracer:
    return _TRACER


def counter(name: str, **labels: str) -> Counter:
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, edges=None, **labels: str) -> Histogram:
    return _REGISTRY.histogram(name, edges=edges, **labels)


def span(name: str, **meta: object):
    """Open a tracing span; a shared no-op when telemetry is disabled."""
    if not _state.enabled:
        return NULL_SPAN
    return _TRACER.start_span(name, meta)


def remote_span(
    name: str,
    trace_id: Optional[int],
    parent_span_id: Optional[int],
    **meta: object,
):
    """Open a span under a *propagated* parent (trace-context stitching).

    The worker side of distributed tracing: ``trace_id``/``parent_span_id``
    arrived on a command envelope from the driver (see
    :func:`repro.distrib.transport.traced_message`), so the span this opens
    is a child of the driver-side span that sent the command — the two
    halves join into one tree when the worker's span batch is folded back.
    A no-op when telemetry is disabled, like :func:`span`.
    """
    if not _state.enabled:
        return NULL_SPAN
    return _TRACER.start_span(name, meta, parent_id=parent_span_id, trace_id=trace_id)


def trace_context() -> Optional[tuple]:
    """``(trace_id, span_id)`` of the innermost open span, or ``None``."""
    return _TRACER.current_context()


# --------------------------------------------------------------------------- #
# Fork-boundary fold
# --------------------------------------------------------------------------- #
# Spans shipped per fold are bounded: the most recent batch wins, so a
# worker that folded rarely ships a window, never an unbounded backlog.
_SPAN_BATCH_LIMIT = 1024


def take_snapshot() -> List[Dict[str, object]]:
    """Snapshot-and-zero the global registry (worker side of the fold)."""
    return _REGISTRY.take_snapshot()


def merge_snapshot(
    entries, extra_labels: Optional[Mapping[str, str]] = None
) -> None:
    """Fold a worker snapshot into the global registry (driver side)."""
    _REGISTRY.merge_snapshot(entries, extra_labels=extra_labels)


def take_span_snapshot(max_spans: Optional[int] = _SPAN_BATCH_LIMIT) -> List[Dict[str, object]]:
    """Drain-and-zero the global span ring (worker side of the span fold)."""
    return _TRACER.take_snapshot(max_spans=max_spans)


def merge_spans(entries, extra_meta: Optional[Mapping[str, object]] = None) -> None:
    """Fold a worker span batch into the global tracer ring (driver side)."""
    _TRACER.ingest(entries, extra_meta=extra_meta)


def take_worker_telemetry() -> Dict[str, object]:
    """The combined worker-side fold payload: metrics snapshot + span batch.

    This is what a worker's ``__telemetry__`` command replies with; both
    halves drain-and-zero in place, so repeated folds never double-count a
    counter or re-ship a span.
    """
    return {"metrics": take_snapshot(), "spans": take_span_snapshot()}


def merge_worker_telemetry(payload, worker) -> None:
    """Fold one worker's combined telemetry payload, labelled ``worker=<i>``.

    Accepts the combined dict from :func:`take_worker_telemetry` or a bare
    metrics snapshot list (the pre-span fold payload), so drivers and
    workers can be upgraded independently.
    """
    label = str(worker)
    if isinstance(payload, Mapping):
        merge_snapshot(payload.get("metrics") or (), extra_labels={"worker": label})
        merge_spans(payload.get("spans") or (), extra_meta={"worker": label})
    else:
        merge_snapshot(payload or (), extra_labels={"worker": label})


# --------------------------------------------------------------------------- #
# Live summary (the CLI's rendering)
# --------------------------------------------------------------------------- #
def summary_text(max_spans: int = 40) -> str:
    """Human-readable summary: every instrument plus the recent span tree."""
    lines: List[str] = [f"telemetry: {'enabled' if _state.enabled else 'disabled'}"]
    instruments = _REGISTRY.instruments()
    counters = [i for i in instruments if i.kind == "counter"]
    gauges = [i for i in instruments if i.kind == "gauge"]
    histograms = [i for i in instruments if i.kind == "histogram"]

    def _label_suffix(instrument) -> str:
        labels = instrument.labels_dict
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"

    if counters:
        lines.append("counters:")
        for instrument in counters:
            lines.append(
                f"  {instrument.name}{_label_suffix(instrument)} = {instrument.value:g}"
            )
    if gauges:
        lines.append("gauges:")
        for instrument in gauges:
            lines.append(
                f"  {instrument.name}{_label_suffix(instrument)} = {instrument.value:g}"
            )
    if histograms:
        lines.append("histograms:")
        for instrument in histograms:
            lines.append(
                f"  {instrument.name}{_label_suffix(instrument)}: "
                f"count={instrument.count} mean={instrument.mean:.4g} "
                f"p50={instrument.percentile(50):.4g} "
                f"p99={instrument.percentile(99):.4g} max={instrument.max if instrument.count else 0.0:.4g}"
            )
    if not instruments:
        lines.append("(no metrics recorded)")
    lines.append("spans:")
    lines.append(render_spans(_TRACER.records(), max_spans=max_spans))
    return "\n".join(lines)


# Imported after the module-level API above exists: the service and SLO
# modules reach back into this package (registry(), tracer(), enabled())
# lazily at request/evaluation time.
from .service import (  # noqa: E402
    TelemetryService,
    active_telemetry,
    maybe_serve_telemetry,
    serve_telemetry,
    shutdown_telemetry,
)
from .slo import SloAlert, SloRule, SloWatchdog, default_slo_rules  # noqa: E402

# ``REPRO_TELEMETRY=1`` (or ``true``/``on``/``yes``) enables at import time;
# forked workers inherit either the env var or the already-flipped flag.
if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in ("1", "true", "on", "yes"):
    enable()
