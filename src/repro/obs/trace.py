"""Hot-path tracing spans: monotonic-clock timing, nesting, per-span metadata.

A span is a context manager around one phase of work::

    with obs.span("serve.flush", batch=len(live)):
        ...

When telemetry is disabled, :func:`repro.obs.span` returns a shared
singleton whose ``__enter__``/``__exit__`` do nothing — the instrumented
code pays one module-attribute read and one branch, no allocation, no clock
read.  When enabled, finished spans land in a bounded ring buffer (the
trace profile) and their durations feed ``span.<name>`` histograms in the
metrics registry, so "where did this iteration's time go" is answerable
both as a tree (the profile) and as a distribution (the histogram).

Spans nest via an explicit stack: each record carries its parent id and
depth, and :func:`render_spans` reconstructs the indented tree.  The stack
is per-tracer, not per-thread — every recording path in this codebase is
single-threaded per process (the compiled GEMM pool threads never open
spans), which keeps the enabled-mode overhead to two clock reads and one
dataclass append per span.

Exception safety: a span whose body raises still finishes (recording the
exception type in ``error``) and re-raises — tracing never swallows or
alters control flow.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["SpanRecord", "Span", "NullSpan", "NULL_SPAN", "Tracer", "render_spans"]

# Bound once: spans open/close on sub-millisecond paths, where even the
# ``time.`` attribute lookup per clock read shows up.
_perf_counter = time.perf_counter
_monotonic = time.monotonic


@dataclass(slots=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start_s: float  # monotonic clock, process-relative
    duration_ms: float
    meta: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "meta": dict(self.meta),
            "error": self.error,
        }


class NullSpan:
    """The disabled-mode span: a shared, allocation-free no-op."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **meta: object) -> None:
        pass


NULL_SPAN = NullSpan()


class Span:
    """A live (enabled-mode) span; created via :meth:`Tracer.start`."""

    __slots__ = ("_tracer", "_record", "_t0")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._t0 = 0.0

    def annotate(self, **meta: object) -> None:
        """Attach metadata discovered mid-span (e.g. a batch size)."""
        self._record.meta.update(meta)

    def __enter__(self) -> "Span":
        self._tracer._push(self._record)
        self._t0 = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_ms = (_perf_counter() - self._t0) * 1000.0
        if exc_type is not None:
            self._record.error = exc_type.__name__
        self._record.duration_ms = duration_ms
        self._tracer._pop(self._record)
        return False  # never swallow


class Tracer:
    """Bounded ring buffer of finished spans plus the active nesting stack.

    ``on_finish`` is invoked with every finished record — the global tracer
    uses it to feed ``span.<name>`` duration histograms in the registry.
    """

    def __init__(
        self,
        max_spans: int = 4096,
        on_finish: Optional[Callable[[SpanRecord], None]] = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._finished: Deque[SpanRecord] = deque(maxlen=max_spans)
        self._stack: List[SpanRecord] = []
        self._ids = itertools.count(1)
        self._on_finish = on_finish

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        return len(self._stack)

    def start(self, name: str, **meta: object) -> Span:
        return self.start_span(name, meta)

    def start_span(self, name: str, meta: Dict[str, object]) -> Span:
        """Dict-taking twin of :meth:`start` — callers that already hold a
        kwargs dict (``obs.span``) skip one repack per span.  The dict is
        owned by the record from here on; pass a fresh one.
        """
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=None,  # resolved at __enter__ time, from the stack
            name=name,
            depth=0,
            start_s=0.0,
            duration_ms=0.0,
            meta=meta,
        )
        return Span(self, record)

    def _push(self, record: SpanRecord) -> None:
        if self._stack:
            parent = self._stack[-1]
            record.parent_id = parent.span_id
            record.depth = parent.depth + 1
        record.start_s = _monotonic()
        self._stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        # The span being closed is always the innermost one: spans are
        # context managers, so exits happen in strict LIFO order.
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        self._finished.append(record)
        if self._on_finish is not None:
            self._on_finish(record)

    # ------------------------------------------------------------------ #
    def records(self) -> List[SpanRecord]:
        """Finished spans, oldest first (non-draining)."""
        return list(self._finished)

    def take(self) -> List[SpanRecord]:
        """Drain and return the finished spans (streaming exporters)."""
        records = list(self._finished)
        self._finished.clear()
        return records

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()


def render_spans(records: List[SpanRecord], max_spans: Optional[int] = None) -> str:
    """ASCII tree of a span profile, indented by nesting depth.

    Records are ordered by start time (spans finish out of start order), so
    a parent prints above its children; ``max_spans`` keeps CLI output
    bounded (the most recent spans win).
    """
    ordered = sorted(records, key=lambda r: (r.start_s, r.span_id))
    if max_spans is not None and len(ordered) > max_spans:
        ordered = ordered[-max_spans:]
    if not ordered:
        return "(no spans recorded)"
    lines = []
    for record in ordered:
        meta = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(record.meta.items()))
            if record.meta
            else ""
        )
        error = f" !{record.error}" if record.error else ""
        lines.append(
            f"{'  ' * record.depth}{record.name}  {record.duration_ms:.3f} ms{meta}{error}"
        )
    return "\n".join(lines)
