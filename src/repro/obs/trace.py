"""Hot-path tracing spans: monotonic-clock timing, nesting, per-span metadata.

A span is a context manager around one phase of work::

    with obs.span("serve.flush", batch=len(live)):
        ...

When telemetry is disabled, :func:`repro.obs.span` returns a shared
singleton whose ``__enter__``/``__exit__`` do nothing — the instrumented
code pays one module-attribute read and one branch, no allocation, no clock
read.  When enabled, finished spans land in a bounded ring buffer (the
trace profile) and their durations feed ``span.<name>`` histograms in the
metrics registry, so "where did this iteration's time go" is answerable
both as a tree (the profile) and as a distribution (the histogram).

Spans nest via an explicit stack: each record carries its parent id and
depth, and :func:`render_spans` reconstructs the indented tree.  The stack
is per-tracer, not per-thread — every recording path in this codebase is
single-threaded per process (the compiled GEMM pool threads never open
spans), which keeps the enabled-mode overhead to two clock reads and one
dataclass append per span.

Exception safety: a span whose body raises still finishes (recording the
exception type in ``error``) and re-raises — tracing never swallows or
alters control flow.

Distributed stitching: span ids embed the recording process's pid
(refreshed on fork via ``os.register_at_fork``), so ids minted by a driver
and its workers never collide.  A span opened with an explicit remote
parent (``Tracer.start_span(..., parent_id=..., trace_id=...)`` — the
worker side of trace-context propagation) keeps that parent link, and
:meth:`Tracer.ingest` folds worker span batches back into the driver's
ring, so :func:`render_spans` reconstructs one tree spanning processes.
Ids come from a counter plus the pid — no RNG draw, per the observability
contract.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["SpanRecord", "Span", "NullSpan", "NULL_SPAN", "Tracer", "render_spans"]

# Bound once: spans open/close on sub-millisecond paths, where even the
# ``time.`` attribute lookup per clock read shows up.
_perf_counter = time.perf_counter
_monotonic = time.monotonic

# Per-process id prefix: span ids are (pid << 32) | counter so ids minted
# in forked workers never collide with the driver's when batches are folded
# back.  Refreshed in the child on fork (the forked Tracer inherits the
# parent's counter state, but the pid prefix diverges immediately).
_PID_SHIFT = 32
_pid_prefix = os.getpid() << _PID_SHIFT


def _refresh_pid_prefix() -> None:
    global _pid_prefix
    _pid_prefix = os.getpid() << _PID_SHIFT


os.register_at_fork(after_in_child=_refresh_pid_prefix)


@dataclass(slots=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start_s: float  # monotonic clock, process-relative
    duration_ms: float
    meta: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    trace_id: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "meta": dict(self.meta),
            "error": self.error,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, entry: Mapping[str, object]) -> "SpanRecord":
        return cls(
            span_id=int(entry["span_id"]),
            parent_id=None if entry.get("parent_id") is None else int(entry["parent_id"]),
            name=str(entry["name"]),
            depth=int(entry.get("depth", 0)),
            start_s=float(entry.get("start_s", 0.0)),
            duration_ms=float(entry.get("duration_ms", 0.0)),
            meta=dict(entry.get("meta") or {}),
            error=entry.get("error"),
            trace_id=None if entry.get("trace_id") is None else int(entry["trace_id"]),
        )


class NullSpan:
    """The disabled-mode span: a shared, allocation-free no-op."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **meta: object) -> None:
        pass


NULL_SPAN = NullSpan()


class Span:
    """A live (enabled-mode) span; created via :meth:`Tracer.start`."""

    __slots__ = ("_tracer", "_record", "_t0")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._t0 = 0.0

    def annotate(self, **meta: object) -> None:
        """Attach metadata discovered mid-span (e.g. a batch size)."""
        self._record.meta.update(meta)

    def __enter__(self) -> "Span":
        self._tracer._push(self._record)
        self._t0 = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_ms = (_perf_counter() - self._t0) * 1000.0
        if exc_type is not None:
            self._record.error = exc_type.__name__
        self._record.duration_ms = duration_ms
        self._tracer._pop(self._record)
        return False  # never swallow


class Tracer:
    """Bounded ring buffer of finished spans plus the active nesting stack.

    ``on_finish`` is invoked with every finished record — the global tracer
    uses it to feed ``span.<name>`` duration histograms in the registry.
    """

    def __init__(
        self,
        max_spans: int = 4096,
        on_finish: Optional[Callable[[SpanRecord], None]] = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._finished: Deque[SpanRecord] = deque(maxlen=max_spans)
        self._stack: List[SpanRecord] = []
        self._ids = itertools.count(1)
        self._on_finish = on_finish

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        return len(self._stack)

    def start(self, name: str, **meta: object) -> Span:
        return self.start_span(name, meta)

    def start_span(
        self,
        name: str,
        meta: Dict[str, object],
        parent_id: Optional[int] = None,
        trace_id: Optional[int] = None,
    ) -> Span:
        """Dict-taking twin of :meth:`start` — callers that already hold a
        kwargs dict (``obs.span``) skip one repack per span.  The dict is
        owned by the record from here on; pass a fresh one.

        ``parent_id``/``trace_id`` preset a *remote* parent (trace-context
        propagation: a worker opening the child span of a driver-side
        command).  A locally open span still wins — remote context only
        applies at the top of the stack.
        """
        record = SpanRecord(
            span_id=_pid_prefix | next(self._ids),
            parent_id=parent_id,  # local parents resolved at __enter__ time
            name=name,
            depth=0,
            start_s=0.0,
            duration_ms=0.0,
            meta=meta,
            trace_id=trace_id,
        )
        return Span(self, record)

    def _push(self, record: SpanRecord) -> None:
        if self._stack:
            parent = self._stack[-1]
            record.parent_id = parent.span_id
            record.depth = parent.depth + 1
            record.trace_id = parent.trace_id
        elif record.trace_id is None:
            # Root span (no local parent, no propagated context): it begins
            # its own trace.  A preset remote parent keeps the propagated
            # trace id instead.
            record.trace_id = record.span_id
        record.start_s = _monotonic()
        self._stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        # The span being closed is always the innermost one: spans are
        # context managers, so exits happen in strict LIFO order.
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        self._finished.append(record)
        if self._on_finish is not None:
            self._on_finish(record)

    # ------------------------------------------------------------------ #
    def current_context(self) -> Optional[Tuple[Optional[int], int]]:
        """``(trace_id, span_id)`` of the innermost open span, or ``None``.

        This is the driver side of trace-context propagation: the pair is
        stamped onto outgoing command envelopes so the worker can open its
        command span as a child of the span that sent the command.
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return (top.trace_id, top.span_id)

    # ------------------------------------------------------------------ #
    def records(self) -> List[SpanRecord]:
        """Finished spans, oldest first (non-draining)."""
        return list(self._finished)

    def take(self) -> List[SpanRecord]:
        """Drain and return the finished spans (streaming exporters)."""
        records = list(self._finished)
        self._finished.clear()
        return records

    def take_snapshot(self, max_spans: Optional[int] = None) -> List[Dict[str, object]]:
        """Drain-and-zero the finished-span ring, as JSON-able dicts.

        The span half of the fork-boundary fold protocol, mirroring
        ``MetricsRegistry.take_snapshot``: the ring is cleared *in place*
        (the tracer identity, id counter and open-span stack survive), so
        repeated folds never re-ship a span.  ``max_spans`` bounds the
        batch — the most recent spans win, older ones are dropped with the
        ring (bounded batches, never an unbounded backlog).
        """
        records = list(self._finished)
        self._finished.clear()
        if max_spans is not None and len(records) > max_spans:
            records = records[-max_spans:]
        return [record.as_dict() for record in records]

    def ingest(
        self,
        entries: Iterable[Mapping[str, object]],
        extra_meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Fold a worker span batch into this ring (driver side of the fold).

        ``extra_meta`` is added to every record — the sharded drivers tag
        worker spans ``worker=<index>``.  Ingested records bypass
        ``on_finish`` deliberately: the worker already fed its own
        ``span.<name>`` histograms, which arrive via the *metrics* fold, so
        feeding them again here would double-count durations.
        """
        extra = dict(extra_meta or {})
        for entry in entries:
            record = (
                entry if isinstance(entry, SpanRecord) else SpanRecord.from_dict(entry)
            )
            if extra:
                record.meta.update(extra)
            self._finished.append(record)

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()


def render_spans(records: List[SpanRecord], max_spans: Optional[int] = None) -> str:
    """ASCII tree of a span profile, reconstructed from parent links.

    Records are stitched into trees by ``parent_id`` — which works across
    process boundaries once worker batches are ingested, because span ids
    are pid-prefixed and remote parents are propagated with the command
    envelope.  Roots (and orphans whose parent fell out of the ring) sort
    by start time; ``max_spans`` keeps CLI output bounded (the most recent
    spans win).
    """
    ordered = sorted(records, key=lambda r: (r.start_s, r.span_id))
    if max_spans is not None and len(ordered) > max_spans:
        ordered = ordered[-max_spans:]
    if not ordered:
        return "(no spans recorded)"
    children: Dict[int, List[SpanRecord]] = {}
    roots: List[SpanRecord] = []
    known = {record.span_id for record in ordered}
    for record in ordered:
        if record.parent_id is not None and record.parent_id in known:
            children.setdefault(record.parent_id, []).append(record)
        else:
            roots.append(record)

    lines: List[str] = []

    def _emit(record: SpanRecord, depth: int) -> None:
        meta = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(record.meta.items()))
            if record.meta
            else ""
        )
        error = f" !{record.error}" if record.error else ""
        lines.append(
            f"{'  ' * depth}{record.name}  {record.duration_ms:.3f} ms{meta}{error}"
        )
        for child in children.get(record.span_id, ()):
            _emit(child, depth + 1)

    for root in roots:
        _emit(root, 0)
    return "\n".join(lines)
