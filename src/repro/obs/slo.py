"""SLO watchdog: declarative rules evaluated against the metrics registry.

A rule names a registry series and a threshold; the watchdog evaluates the
rule set against live instrument state on a cadence (a daemon thread, or
explicit :meth:`SloWatchdog.evaluate` calls) and turns violations into
:class:`SloAlert` events.  Alerts are surfaced three ways:

* the ``obs.alerts`` counter (labelled ``rule=<name>``) counts ok→firing
  transitions, so alert churn is visible in any metrics scrape;
* sinks (:class:`~repro.obs.export.JsonlSink`) receive an ``alert`` event
  per transition — the durable audit trail;
* :meth:`active_alerts` exposes the currently-firing set, which the
  telemetry service's ``/healthz`` endpoint reports (HTTP 503 while any
  rule fires).

Rule kinds cover the shapes this codebase's SLOs take:

``ratio``
    numerator counter sum / denominator counter sum (deadline-miss rate);
``percentile``
    worst per-series histogram percentile (heartbeat RTT p99);
``counter``
    summed counter value (worker restarts);
``gauge``
    worst per-series gauge value (scheduler queue depth).

Series sums/maxima fold across label sets, so per-worker/per-server series
are judged as one fleet-wide signal.  Evaluation reads instrument state
only — clocks, no RNG, no numeric-path writes — keeping the observability
contract intact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SloRule", "SloAlert", "SloWatchdog", "default_slo_rules"]

_RULE_KINDS = ("ratio", "percentile", "counter", "gauge")


@dataclass(frozen=True)
class SloRule:
    """One declarative SLO rule over registry series.

    ``metric`` is the dotted registry name (all label sets fold together);
    ``denominator`` is required for ``kind="ratio"``; ``min_events``
    suppresses the rule until the denominator (ratio) or observation count
    (percentile) has enough data to be meaningful.
    """

    name: str
    kind: str
    metric: str
    threshold: float
    denominator: Optional[str] = None
    percentile: float = 99.0
    min_events: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise ValueError(f"unknown SLO rule kind {self.kind!r}; one of {_RULE_KINDS}")
        if self.kind == "ratio" and not self.denominator:
            raise ValueError(f"ratio rule {self.name!r} needs a denominator metric")


@dataclass
class SloAlert:
    """One firing rule: the observed value against its threshold."""

    rule: str
    kind: str
    metric: str
    value: float
    threshold: float
    description: str = ""
    fired_at: float = field(default_factory=time.time)

    @property
    def message(self) -> str:
        return (
            f"SLO {self.rule}: {self.metric} = {self.value:.4g} "
            f"exceeds {self.threshold:.4g}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "description": self.description,
            "message": self.message,
            "fired_at": self.fired_at,
        }


def _counter_sum(registry, name: str) -> float:
    return float(sum(instrument.value for instrument in registry.series(name)))


def evaluate_rule(rule: SloRule, registry) -> Optional[SloAlert]:
    """Evaluate one rule against a registry; an :class:`SloAlert` if firing."""
    if rule.kind == "ratio":
        denominator = _counter_sum(registry, rule.denominator)
        if denominator < rule.min_events or denominator == 0.0:
            return None
        value = _counter_sum(registry, rule.metric) / denominator
    elif rule.kind == "percentile":
        series = [h for h in registry.series(rule.metric) if h.kind == "histogram"]
        total = sum(h.count for h in series)
        if total < rule.min_events:
            return None
        value = max(h.percentile(rule.percentile) for h in series if h.count)
    elif rule.kind == "counter":
        series = registry.series(rule.metric)
        if not series:
            return None
        value = _counter_sum(registry, rule.metric)
    else:  # gauge
        series = registry.series(rule.metric)
        if not series:
            return None
        value = max(float(instrument.value) for instrument in series)
    if value > rule.threshold:
        return SloAlert(
            rule=rule.name,
            kind=rule.kind,
            metric=rule.metric,
            value=float(value),
            threshold=rule.threshold,
            description=rule.description,
        )
    return None


def default_slo_rules() -> List[SloRule]:
    """The stock rule set over this repo's own serving/transport metrics."""
    return [
        SloRule(
            name="deadline-miss-rate",
            kind="ratio",
            metric="serve.deadline_misses",
            denominator="serve.decisions",
            threshold=0.2,
            min_events=20,
            description="more than 20% of decisions missed their deadline",
        ),
        SloRule(
            name="heartbeat-rtt-p99",
            kind="percentile",
            metric="transport.heartbeat_rtt_ms",
            percentile=99.0,
            threshold=250.0,
            min_events=8,
            description="transport liveness probes slower than 250ms at p99",
        ),
        SloRule(
            name="worker-restarts",
            kind="counter",
            metric="distrib.worker_restarts",
            threshold=0.0,
            description="at least one rollout worker crashed and was replayed",
        ),
        SloRule(
            name="queue-depth",
            kind="gauge",
            metric="serve.queue_depth",
            threshold=512.0,
            description="a serving scheduler queue is backing up",
        ),
    ]


class SloWatchdog:
    """Evaluates a rule set on a cadence; tracks the currently-firing alerts.

    ``sinks`` receive one ``alert`` event per ok→firing transition (not per
    evaluation — a rule that stays red does not spam the audit trail); the
    same transitions increment the ``obs.alerts`` counter.  The background
    thread is optional: :meth:`evaluate` is the whole machine, callable
    synchronously from tests or a driver loop.
    """

    def __init__(
        self,
        rules: Optional[Sequence[SloRule]] = None,
        registry=None,
        interval_s: float = 5.0,
        sinks: Sequence = (),
    ) -> None:
        self.rules: List[SloRule] = list(default_slo_rules() if rules is None else rules)
        self.interval_s = float(interval_s)
        self.sinks = list(sinks)
        self._registry = registry
        self._active: Dict[str, SloAlert] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.evaluations = 0

    def _resolve_registry(self):
        if self._registry is not None:
            return self._registry
        from . import registry

        return registry()

    # ------------------------------------------------------------------ #
    def evaluate(self) -> List[SloAlert]:
        """One evaluation pass: returns the firing alerts, updates state."""
        registry = self._resolve_registry()
        firing: List[SloAlert] = []
        for rule in self.rules:
            alert = evaluate_rule(rule, registry)
            if alert is None:
                continue
            firing.append(alert)
        with self._lock:
            previous = set(self._active)
            self._active = {alert.rule: alert for alert in firing}
            new_alerts = [alert for alert in firing if alert.rule not in previous]
            self.evaluations += 1
        for alert in new_alerts:
            self._emit(alert)
        return firing

    def _emit(self, alert: SloAlert) -> None:
        from . import counter

        counter("obs.alerts", rule=alert.rule).inc()
        for sink in self.sinks:
            try:
                sink.write_alerts([alert])
            except OSError:
                # A full disk must not take the watchdog down with it.
                continue

    def active_alerts(self) -> List[SloAlert]:
        """The alerts firing as of the last evaluation."""
        with self._lock:
            return list(self._active.values())

    def ok(self) -> bool:
        with self._lock:
            return not self._active

    # ------------------------------------------------------------------ #
    def start(self) -> "SloWatchdog":
        """Start the cadence thread (idempotent); daemon, never blocks exit."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-slo-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.evaluate()
            except Exception:
                # The watchdog observes; it must never crash the process.
                pass
            self._stop.wait(self.interval_s)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
