"""Telemetry exporters: JSONL event stream and Prometheus text exposition.

Two consumption styles:

* :class:`JsonlSink` appends self-describing events — metric snapshots and
  span batches — to a JSONL file.  The format round-trips: a snapshot
  written by one process can be :func:`read_jsonl`-ed and
  ``MetricsRegistry.merge_snapshot``-ed by another, which is also how
  sample traces are archived as CI artifacts.
* :func:`prometheus_text` renders a registry snapshot in the Prometheus
  text exposition format (counters as ``_total``, histograms with
  cumulative ``le`` buckets, ``_sum`` and ``_count``), so a scrape endpoint
  or a push gateway can be wired on top without new plumbing.

Both exporters are pull-style over immutable snapshots — they never touch
instrument internals and can run at any cadence without perturbing the
recording paths.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Mapping, Optional

from .trace import SpanRecord

__all__ = [
    "JsonlSink",
    "read_jsonl",
    "prometheus_text",
    "parse_prometheus_text",
]


# --------------------------------------------------------------------------- #
# JSONL event stream
# --------------------------------------------------------------------------- #
class JsonlSink:
    """Append-only JSONL event sink with optional size-bounded rotation.

    Events carry a ``type`` (``"metrics"``, ``"spans"`` or ``"alerts"``), a
    wall-clock ``ts`` and the payload.  The file handle opens lazily on
    first write and is flushed per event, so a crash loses at most the
    event being written.

    ``max_bytes`` arms rotation: when an append would push the active file
    past the bound, it is renamed to ``<path>.1`` (older generations shift
    to ``.2`` … ``.<keep_files>``; the oldest drops) and a fresh file takes
    its place.  Rotation keeps long soaks from filling the disk while
    preserving a bounded recent history; each rotated file is still a
    valid :func:`read_jsonl` input.  ``max_bytes=None`` (default) keeps
    the original unbounded append-only behaviour.
    """

    def __init__(self, path, max_bytes: Optional[int] = None, keep_files: int = 3) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 when set")
        if keep_files < 1:
            raise ValueError("keep_files must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.keep_files = keep_files
        self._handle = None
        self._size = 0

    def _open(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = os.path.getsize(self.path)

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        # Shift path.n -> path.(n+1), oldest first (the one past keep_files
        # is overwritten and thus dropped); then path -> path.1.
        for index in range(self.keep_files - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        os.replace(str(self.path), f"{self.path}.1")
        self._open()

    def _write(self, event: Dict[str, object]) -> None:
        if self._handle is None:
            self._open()
        line = json.dumps(event) + "\n"
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + len(line) > self.max_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._size += len(line)

    def write_metrics(self, snapshot: Iterable[Mapping[str, object]]) -> None:
        """Record one registry snapshot (``MetricsRegistry.snapshot()``)."""
        self._write({"type": "metrics", "ts": time.time(), "metrics": list(snapshot)})

    def write_spans(self, spans: Iterable[SpanRecord]) -> None:
        """Record a batch of finished spans (``Tracer.records()``/``take()``)."""
        payload = [
            span.as_dict() if isinstance(span, SpanRecord) else dict(span)
            for span in spans
        ]
        if payload:
            self._write({"type": "spans", "ts": time.time(), "spans": payload})

    def write_alerts(self, alerts: Iterable) -> None:
        """Record SLO alert transitions (``SloWatchdog`` sink protocol)."""
        payload = [
            alert.as_dict() if hasattr(alert, "as_dict") else dict(alert)
            for alert in alerts
        ]
        if payload:
            self._write({"type": "alerts", "ts": time.time(), "alerts": payload})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path) -> List[Dict[str, object]]:
    """Parse a :class:`JsonlSink` file back into its event list."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
def _prom_name(name: str) -> str:
    """Dotted metric name -> Prometheus-legal identifier."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _prom_labels(labels: Mapping[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = {**dict(labels), **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{str(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def prometheus_text(snapshot: Iterable[Mapping[str, object]]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()
    for entry in snapshot:
        kind = entry["kind"]
        name = _prom_name(str(entry["name"]))
        labels = entry.get("labels") or {}
        if kind == "counter":
            metric = f"{name}_total"
            if metric not in typed:
                lines.append(f"# TYPE {metric} counter")
                typed.add(metric)
            lines.append(f"{metric}{_prom_labels(labels)} {entry['value']:.17g}")
        elif kind == "gauge":
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(f"{name}{_prom_labels(labels)} {entry['value']:.17g}")
        elif kind == "histogram":
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            for edge, count in zip(entry["edges"], entry["counts"]):
                cumulative += int(count)
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': f'{edge:.17g}'})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {entry['count']}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {entry['sum']:.17g}")
            lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{series: value}`` (round-trip tests).

    The series key is the full ``name{labels}`` string as rendered; type
    comments are skipped.  This is a deliberately small parser for the
    repo's own output, not a general Prometheus client.
    """
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        series[key] = float(value)
    return series
