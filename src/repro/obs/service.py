"""Live telemetry service: ``/metrics``, ``/spans`` and ``/healthz`` over HTTP.

A stdlib :mod:`http.server` on a daemon thread — no new dependencies, no
impact on the recording paths (the exporters read immutable snapshots).
Endpoints:

``/metrics``
    Prometheus text exposition of the global registry
    (:func:`repro.obs.export.prometheus_text`), scrapeable by any
    Prometheus-compatible collector or by ``repro-amoeba top``.
``/spans``
    JSON tail of the global span ring (``?n=`` bounds the tail,
    default 256) — the stitched distributed trace, once worker batches
    have been folded.
``/healthz``
    JSON health verdict from the service's SLO watchdog: HTTP 200 with
    ``{"status": "ok"}`` while no rule fires, HTTP 503 with the active
    alert list while one does.

Start it with :func:`serve_telemetry` (one service per process; ``port=0``
picks a free port) or implicitly via the ``REPRO_TELEMETRY_PORT``
environment variable — :func:`maybe_serve_telemetry` is called by
:class:`~repro.serve.server.PolicyServer`,
:class:`~repro.distrib.sharded.ShardedRolloutEngine` and the CLI's
``serve``/``attack`` commands, so exporting the variable is enough to get
a scrape endpoint on any driver.  Forked workers inherit the variable too;
their bind attempt fails on the occupied port and is deliberately
swallowed — the *driver* owns the process-visible endpoint, folding worker
telemetry into it.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence
from urllib.parse import parse_qs, urlparse

from .slo import SloWatchdog

__all__ = [
    "TelemetryService",
    "serve_telemetry",
    "maybe_serve_telemetry",
    "active_telemetry",
    "shutdown_telemetry",
]

TELEMETRY_PORT_ENV = "REPRO_TELEMETRY_PORT"


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints; reads global obs state at request time."""

    service: "TelemetryService"  # set per server instance via subclassing

    # Silence the default stderr access log: the service rides inside
    # benchmarks and tests where request noise would pollute output.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        from . import enabled, registry, tracer
        from .export import prometheus_text

        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            body = prometheus_text(registry().snapshot()).encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif route == "/spans":
            query = parse_qs(parsed.query)
            try:
                tail = int(query.get("n", ["256"])[0])
            except ValueError:
                tail = 256
            records = tracer().records()
            if tail > 0:
                records = records[-tail:]
            body = json.dumps(
                {"spans": [record.as_dict() for record in records]}
            ).encode("utf-8")
            self._reply(200, body, "application/json")
        elif route == "/healthz":
            watchdog = self.service.watchdog
            alerts = watchdog.active_alerts() if watchdog is not None else []
            payload = {
                "status": "ok" if not alerts else "alerting",
                "telemetry_enabled": enabled(),
                "alerts": [alert.as_dict() for alert in alerts],
            }
            body = json.dumps(payload).encode("utf-8")
            self._reply(200 if not alerts else 503, body, "application/json")
        else:
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")


class TelemetryService:
    """One process's scrape endpoint: HTTP server thread + SLO watchdog."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        watchdog: Optional[SloWatchdog] = None,
    ) -> None:
        handler = type("_BoundHandler", (_TelemetryHandler,), {"service": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self.watchdog = watchdog
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-telemetry-{self.port}",
            daemon=True,
        )
        self._thread.start()
        if self.watchdog is not None:
            self.watchdog.start()
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.watchdog is not None:
            self.watchdog.stop()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "TelemetryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# One service per process: repeated serve_telemetry() calls return the live
# instance instead of fighting over ports.
_ACTIVE: Optional[TelemetryService] = None


def serve_telemetry(
    port: int = 0,
    host: str = "127.0.0.1",
    rules: Optional[Sequence] = None,
    watchdog_interval_s: float = 5.0,
    sinks: Sequence = (),
) -> TelemetryService:
    """Start (or return) the process's telemetry service.

    ``port=0`` binds an ephemeral port (see ``service.port``/``service.url``).
    ``rules=None`` arms the stock :func:`~repro.obs.slo.default_slo_rules`
    watchdog; pass an explicit (possibly empty) rule list to override.
    ``sinks`` receive the watchdog's alert events.
    """
    global _ACTIVE
    if _ACTIVE is not None and not _ACTIVE.closed:
        return _ACTIVE
    watchdog = SloWatchdog(rules=rules, interval_s=watchdog_interval_s, sinks=sinks)
    _ACTIVE = TelemetryService(port=port, host=host, watchdog=watchdog)
    return _ACTIVE


def maybe_serve_telemetry() -> Optional[TelemetryService]:
    """Start the service from ``REPRO_TELEMETRY_PORT`` if set; never raises.

    The implicit wiring used by driver constructors: a malformed value is
    ignored, and a bind failure (the port is taken — typically a forked
    worker inheriting the driver's env var) is swallowed so workers start
    cleanly without the variable being scrubbed from their environment.
    """
    global _ACTIVE
    if _ACTIVE is not None and not _ACTIVE.closed:
        return _ACTIVE
    raw = os.environ.get(TELEMETRY_PORT_ENV, "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        return None
    try:
        return serve_telemetry(port=port)
    except OSError:
        return None


def active_telemetry() -> Optional[TelemetryService]:
    """The live service instance, or ``None``."""
    if _ACTIVE is not None and not _ACTIVE.closed:
        return _ACTIVE
    return None


def shutdown_telemetry() -> None:
    """Stop the process's telemetry service, if one is running."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None
