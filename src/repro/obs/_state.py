"""Process-wide telemetry switch.

Kept in its own tiny module so hot paths can gate on one attribute read::

    from ..obs import _state as _obs_state
    ...
    if _obs_state.enabled:
        <record>

``enabled`` is flipped by :func:`repro.obs.enable` / :func:`repro.obs.disable`
(or the ``REPRO_TELEMETRY`` environment variable at import time) and is the
*only* piece of telemetry state instrumented code should consult before
doing any work: when it is ``False`` the instrumentation must cost one
attribute lookup and one branch, nothing else.
"""

enabled: bool = False
