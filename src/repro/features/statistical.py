"""Statistical flow features in the style of Barradas et al. (USENIX Sec'18).

The paper's tree-based censoring classifiers (DT / RF) consume 166 features
per flow "covering bi-directional packet/timing statistics, burst behaviors,
percentile features and flow-level information".  This module reproduces that
feature family:

* summary statistics (min / max / mean / std / median / MAD / skew / kurtosis)
  of packet sizes and inter-packet delays, computed for the whole flow and
  separately per direction;
* decile features of the packet-size and timing distributions per direction;
* burst features (a burst is a maximal run of consecutive same-direction
  packets): count, length and byte statistics per direction;
* flow-level features: packet/byte counts and ratios, duration, throughput.

The exact feature count is 166, asserted in the test suite, and every feature
has a stable name (``feature_names()``) so importance analyses (Figure 4) can
classify features as packet- or timing-derived.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..flows.flow import Flow

__all__ = ["StatisticalFeatureExtractor", "N_STATISTICAL_FEATURES"]

N_STATISTICAL_FEATURES = 166

_SUMMARY_NAMES = ["min", "max", "mean", "std", "median", "mad", "skew", "kurtosis"]
_DECILES = [10, 20, 30, 40, 50, 60, 70, 80, 90]


def _skew_kurtosis(values: np.ndarray) -> Tuple[float, float]:
    """Sample skewness and excess kurtosis; zero for (near-)constant data."""
    mean = values.mean()
    std = values.std()
    if std < 1e-12:
        return 0.0, 0.0
    standardised = (values - mean) / std
    return float(np.mean(standardised ** 3)), float(np.mean(standardised ** 4) - 3.0)


def _summary(values: np.ndarray) -> List[float]:
    """Eight summary statistics of ``values`` (zeros when empty)."""
    if values.size == 0:
        return [0.0] * len(_SUMMARY_NAMES)
    if values.size == 1:
        value = float(values[0])
        return [value, value, value, 0.0, value, 0.0, 0.0, 0.0]
    skew, kurtosis = _skew_kurtosis(values)
    return [
        float(values.min()),
        float(values.max()),
        float(values.mean()),
        float(values.std()),
        float(np.median(values)),
        float(np.median(np.abs(values - np.median(values)))),
        skew,
        kurtosis,
    ]


def _deciles(values: np.ndarray) -> List[float]:
    if values.size == 0:
        return [0.0] * len(_DECILES)
    return [float(np.percentile(values, q)) for q in _DECILES]


def _bursts(directions: np.ndarray, sizes: np.ndarray) -> List[Tuple[float, float]]:
    """Return (length, bytes) of each maximal same-direction burst."""
    bursts: List[Tuple[float, float]] = []
    start = 0
    for index in range(1, len(directions) + 1):
        if index == len(directions) or directions[index] != directions[start]:
            bursts.append((float(index - start), float(np.abs(sizes[start:index]).sum())))
            start = index
    return bursts


class StatisticalFeatureExtractor:
    """Extract the 166-dimensional statistical feature vector from a flow."""

    def __init__(self) -> None:
        self._names = self._build_names()
        assert len(self._names) == N_STATISTICAL_FEATURES, len(self._names)

    # ------------------------------------------------------------------ #
    # Feature names / categories
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_names() -> List[str]:
        names: List[str] = []
        # Packet-size summaries: overall, upstream, downstream  -> 3 * 8 = 24
        for scope in ("all", "up", "down"):
            names.extend(f"pkt_{scope}_{stat}" for stat in _SUMMARY_NAMES)
        # Timing summaries: overall, upstream, downstream       -> 3 * 8 = 24
        for scope in ("all", "up", "down"):
            names.extend(f"time_{scope}_{stat}" for stat in _SUMMARY_NAMES)
        # Packet-size deciles per direction                      -> 2 * 9 = 18
        for scope in ("up", "down"):
            names.extend(f"pkt_{scope}_p{q}" for q in _DECILES)
        # Timing deciles per direction                           -> 2 * 9 = 18
        for scope in ("up", "down"):
            names.extend(f"time_{scope}_p{q}" for q in _DECILES)
        # Burst length summaries per direction                   -> 2 * 8 = 16
        for scope in ("up", "down"):
            names.extend(f"burst_len_{scope}_{stat}" for stat in _SUMMARY_NAMES)
        # Burst byte summaries per direction                     -> 2 * 8 = 16
        for scope in ("up", "down"):
            names.extend(f"burst_bytes_{scope}_{stat}" for stat in _SUMMARY_NAMES)
        # Burst counts and rate features                         -> 6
        names.extend(
            [
                "burst_count_up",
                "burst_count_down",
                "burst_count_total",
                "direction_changes",
                "bursts_per_packet",
                "max_burst_fraction",
            ]
        )
        # Same-direction gap summaries per direction             -> 2 * 8 = 16
        for scope in ("up", "down"):
            names.extend(f"gap_{scope}_{stat}" for stat in _SUMMARY_NAMES)
        # Cumulative-size checkpoint features                    -> 10
        names.extend(f"cumsum_frac_{i}" for i in range(1, 11))
        # Flow-level features                                    -> 18
        names.extend(
            [
                "n_packets",
                "n_packets_up",
                "n_packets_down",
                "packet_ratio_up",
                "packet_ratio_down",
                "total_bytes",
                "bytes_up",
                "bytes_down",
                "byte_ratio_up",
                "byte_ratio_down",
                "duration_ms",
                "throughput_bytes_per_ms",
                "throughput_up",
                "throughput_down",
                "mean_packet_rate",
                "first_quarter_down_fraction",
                "last_quarter_down_fraction",
                "size_entropy",
            ]
        )
        return names

    def feature_names(self) -> List[str]:
        """Stable ordered names of all 166 features."""
        return list(self._names)

    def feature_categories(self) -> List[str]:
        """Per-feature category: ``"packet"`` or ``"timing"`` (Figure 4 analysis)."""
        categories = []
        for name in self._names:
            if name.startswith(("time_", "gap_")) or name in ("duration_ms", "mean_packet_rate"):
                categories.append("timing")
            elif "throughput" in name:
                categories.append("timing")
            else:
                categories.append("packet")
        return categories

    @property
    def n_features(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #
    def extract(self, flow: Flow) -> np.ndarray:
        sizes = np.asarray(flow.sizes, dtype=np.float64)
        delays = np.asarray(flow.delays, dtype=np.float64)
        directions = np.sign(sizes)
        abs_sizes = np.abs(sizes)
        up_mask = directions > 0
        down_mask = directions < 0
        timestamps = np.cumsum(delays)

        features: List[float] = []

        # Packet-size summaries.
        features.extend(_summary(abs_sizes))
        features.extend(_summary(abs_sizes[up_mask]))
        features.extend(_summary(abs_sizes[down_mask]))
        # Timing summaries.
        features.extend(_summary(delays))
        features.extend(_summary(delays[up_mask]))
        features.extend(_summary(delays[down_mask]))
        # Size deciles per direction.
        features.extend(_deciles(abs_sizes[up_mask]))
        features.extend(_deciles(abs_sizes[down_mask]))
        # Timing deciles per direction.
        features.extend(_deciles(delays[up_mask]))
        features.extend(_deciles(delays[down_mask]))

        # Bursts.
        bursts = _bursts(directions, sizes)
        burst_directions = []
        cursor = 0
        for length, _ in bursts:
            burst_directions.append(directions[cursor])
            cursor += int(length)
        burst_directions = np.asarray(burst_directions)
        burst_lengths = np.asarray([b[0] for b in bursts])
        burst_bytes = np.asarray([b[1] for b in bursts])
        up_bursts = burst_directions > 0
        down_bursts = burst_directions < 0

        features.extend(_summary(burst_lengths[up_bursts]))
        features.extend(_summary(burst_lengths[down_bursts]))
        features.extend(_summary(burst_bytes[up_bursts]))
        features.extend(_summary(burst_bytes[down_bursts]))

        n_packets = len(sizes)
        features.extend(
            [
                float(up_bursts.sum()),
                float(down_bursts.sum()),
                float(len(bursts)),
                float(np.sum(directions[1:] != directions[:-1])),
                float(len(bursts)) / n_packets,
                float(burst_lengths.max() / n_packets) if len(bursts) else 0.0,
            ]
        )

        # Same-direction gaps.
        up_stamps = timestamps[up_mask]
        down_stamps = timestamps[down_mask]
        features.extend(_summary(np.diff(up_stamps) if up_stamps.size > 1 else np.array([])))
        features.extend(_summary(np.diff(down_stamps) if down_stamps.size > 1 else np.array([])))

        # Cumulative-size checkpoints: fraction of bytes sent by each decile of packets.
        cumulative = np.cumsum(abs_sizes)
        total_bytes = cumulative[-1] if cumulative[-1] > 0 else 1.0
        for checkpoint in range(1, 11):
            index = max(0, int(np.ceil(checkpoint / 10 * n_packets)) - 1)
            features.append(float(cumulative[index] / total_bytes))

        # Flow-level.
        bytes_up = float(abs_sizes[up_mask].sum())
        bytes_down = float(abs_sizes[down_mask].sum())
        duration = float(delays.sum())
        safe_duration = duration if duration > 0 else 1.0
        quarter = max(1, n_packets // 4)
        first_quarter = directions[:quarter]
        last_quarter = directions[-quarter:]
        size_counts = np.unique(abs_sizes, return_counts=True)[1]
        size_probabilities = size_counts / size_counts.sum()
        entropy = float(-(size_probabilities * np.log2(size_probabilities)).sum())

        features.extend(
            [
                float(n_packets),
                float(up_mask.sum()),
                float(down_mask.sum()),
                float(up_mask.sum()) / n_packets,
                float(down_mask.sum()) / n_packets,
                bytes_up + bytes_down,
                bytes_up,
                bytes_down,
                bytes_up / (bytes_up + bytes_down) if bytes_up + bytes_down else 0.0,
                bytes_down / (bytes_up + bytes_down) if bytes_up + bytes_down else 0.0,
                duration,
                (bytes_up + bytes_down) / safe_duration,
                bytes_up / safe_duration,
                bytes_down / safe_duration,
                n_packets / safe_duration,
                float(np.mean(first_quarter < 0)),
                float(np.mean(last_quarter < 0)),
                entropy,
            ]
        )

        vector = np.asarray(features, dtype=np.float64)
        if vector.shape[0] != N_STATISTICAL_FEATURES:
            raise RuntimeError(
                f"feature extractor produced {vector.shape[0]} features, expected {N_STATISTICAL_FEATURES}"
            )
        return np.nan_to_num(vector, nan=0.0, posinf=0.0, neginf=0.0)

    def extract_many(self, flows: Sequence[Flow]) -> np.ndarray:
        """Extract features for a sequence of flows -> (n_flows, 166) matrix."""
        return np.vstack([self.extract(flow) for flow in flows])

    def __call__(self, flow: Flow) -> np.ndarray:
        return self.extract(flow)
