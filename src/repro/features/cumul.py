"""CUMUL cumulative flow representation (Panchenko et al., NDSS'16).

CUMUL builds, for each flow, the cumulative sum of signed packet sizes and
interpolates it at ``n_interpolation`` equally spaced points; together with
four aggregate counters this forms the feature vector fed to an RBF-kernel
SVM.  The paper tailors CUMUL to the flow representation of Section 3 (signed
sizes + delays), which is what :meth:`CumulFeatureExtractor.extract` does.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..flows.flow import Flow

__all__ = ["CumulFeatureExtractor"]


class CumulFeatureExtractor:
    """Cumulative-trace features for the CUMUL SVM classifier.

    Parameters
    ----------
    n_interpolation:
        Number of equally spaced samples of the cumulative trace
        (the original paper uses 100).
    include_timing:
        When true, also interpolate the cumulative timing curve, reflecting
        the paper's adaptation of CUMUL to the (size, delay) representation.
    """

    def __init__(self, n_interpolation: int = 100, include_timing: bool = True) -> None:
        if n_interpolation < 2:
            raise ValueError("n_interpolation must be >= 2")
        self.n_interpolation = n_interpolation
        self.include_timing = include_timing

    @property
    def n_features(self) -> int:
        base = 4 + self.n_interpolation
        return base + self.n_interpolation if self.include_timing else base

    def feature_names(self) -> List[str]:
        names = ["n_packets_up", "n_packets_down", "bytes_up", "bytes_down"]
        names.extend(f"cumul_{i}" for i in range(self.n_interpolation))
        if self.include_timing:
            names.extend(f"cumtime_{i}" for i in range(self.n_interpolation))
        return names

    def extract(self, flow: Flow) -> np.ndarray:
        sizes = np.asarray(flow.sizes, dtype=np.float64)
        up_mask = sizes > 0
        down_mask = sizes < 0

        cumulative = np.cumsum(sizes)
        positions = np.linspace(0, len(sizes) - 1, self.n_interpolation)
        interpolated = np.interp(positions, np.arange(len(sizes)), cumulative)

        features = [
            float(up_mask.sum()),
            float(down_mask.sum()),
            float(sizes[up_mask].sum()),
            float(-sizes[down_mask].sum()),
        ]
        features.extend(interpolated.tolist())

        if self.include_timing:
            cumulative_time = np.cumsum(np.asarray(flow.delays, dtype=np.float64))
            interpolated_time = np.interp(positions, np.arange(len(sizes)), cumulative_time)
            features.extend(interpolated_time.tolist())

        return np.asarray(features, dtype=np.float64)

    def extract_many(self, flows: Sequence[Flow]) -> np.ndarray:
        return np.vstack([self.extract(flow) for flow in flows])

    def __call__(self, flow: Flow) -> np.ndarray:
        return self.extract(flow)
