"""Sequence representation of flows for the deep-learning classifiers.

DF, SDAE and LSTM in the paper are "tailored to utilize the flow
representation in Sec. 3 as input", i.e. the raw sequence of (signed packet
size, inter-packet delay) pairs rather than hand-crafted features.  This
module normalises and pads/truncates flows into fixed-size arrays suitable
for those networks, and exposes the normalisation constants so adversarial
actions expressed in [-1, 1] x [0, 1] can be mapped back to bytes and
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..flows.flow import Flow

__all__ = ["SequenceRepresentation", "FlowNormalizer"]


@dataclass(frozen=True)
class FlowNormalizer:
    """Linear normalisation of packet sizes and delays.

    ``size_scale`` is the maximum absolute packet size (bytes) — 1460 for the
    TCP-layer Tor dataset, 16384 for the TLS-record V2Ray dataset.
    ``delay_scale`` is the maximum delay (``max_delay`` in the paper's action
    discretisation).
    """

    size_scale: float
    delay_scale: float

    def __post_init__(self) -> None:
        if self.size_scale <= 0 or self.delay_scale <= 0:
            raise ValueError("normalisation scales must be positive")

    def normalise_sizes(self, sizes: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(sizes, dtype=np.float64) / self.size_scale, -1.0, 1.0)

    def normalise_delays(self, delays: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(delays, dtype=np.float64) / self.delay_scale, 0.0, 1.0)

    def denormalise_size(self, value: float) -> float:
        """Map a normalised size in [-1, 1] back to signed bytes (discretised)."""
        return float(int(np.clip(value, -1.0, 1.0) * self.size_scale))

    def denormalise_delay(self, value: float) -> float:
        """Map a normalised delay in [0, 1] back to milliseconds (discretised)."""
        return float(int(np.clip(value, 0.0, 1.0) * self.delay_scale))

    def normalise_flow(self, flow: Flow) -> np.ndarray:
        """Return the (n_packets, 2) normalised pair representation of a flow."""
        return np.column_stack(
            [self.normalise_sizes(flow.sizes), self.normalise_delays(flow.delays)]
        )

    @classmethod
    def for_dataset(cls, max_packet_size: float, max_delay: float) -> "FlowNormalizer":
        return cls(size_scale=float(max_packet_size), delay_scale=float(max_delay))


class SequenceRepresentation:
    """Pad/truncate normalised flows into fixed-length sequence tensors."""

    def __init__(self, max_length: int, normalizer: FlowNormalizer) -> None:
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.max_length = max_length
        self.normalizer = normalizer

    @property
    def n_features(self) -> int:
        """Flattened dimensionality (for MLP-style models)."""
        return self.max_length * 2

    def transform(self, flow: Flow) -> np.ndarray:
        """Return a (max_length, 2) array of normalised (size, delay) pairs."""
        pairs = self.normalizer.normalise_flow(flow)
        output = np.zeros((self.max_length, 2))
        length = min(len(pairs), self.max_length)
        output[:length] = pairs[:length]
        return output

    def transform_many(self, flows: Sequence[Flow]) -> np.ndarray:
        """Return a (n_flows, max_length, 2) array."""
        return np.stack([self.transform(flow) for flow in flows])

    def transform_flat(self, flows: Sequence[Flow]) -> np.ndarray:
        """Return a (n_flows, max_length * 2) array for MLP/SVM-style models."""
        return self.transform_many(flows).reshape(len(flows), -1)

    def transform_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Pad/truncate an already-normalised (n, 2) pair array."""
        pairs = np.asarray(pairs, dtype=np.float64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"expected (n, 2) pair array, got shape {pairs.shape}")
        output = np.zeros((self.max_length, 2))
        length = min(len(pairs), self.max_length)
        output[:length] = pairs[:length]
        return output
