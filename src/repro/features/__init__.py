"""Feature engineering: statistical features, CUMUL traces and sequence representations."""

from .cumul import CumulFeatureExtractor
from .representation import FlowNormalizer, SequenceRepresentation
from .statistical import N_STATISTICAL_FEATURES, StatisticalFeatureExtractor

__all__ = [
    "StatisticalFeatureExtractor",
    "N_STATISTICAL_FEATURES",
    "CumulFeatureExtractor",
    "SequenceRepresentation",
    "FlowNormalizer",
]
