#!/usr/bin/env python3
"""Checkpoint -> PolicyServer -> load generator, end to end (Section 5.6).

The deployment story of the paper, as a running system:

1. train Amoeba against a censor and save the policy checkpoint;
2. load the checkpoint into the online serving tier (`repro.serve`): the
   architecture is inferred from the state-dict shapes, each concurrent
   flow session holds its own incremental encoder state, and a
   continuous-batching scheduler coalesces per-packet decisions across
   sessions into single batched forwards;
3. drive the server with a synthetic Tor/V2Ray/HTTPS packet schedule and
   compare batched vs sequential serving throughput;
4. apply a per-decision latency deadline (the Figure 11 inter-packet-delay
   argument) with a profile database (Table 2) as the offline fallback
   tier, and report how many sessions the online path could not hold.

Run with:  python examples/serve_policy.py
"""

from __future__ import annotations

from pathlib import Path
import tempfile

from repro.core import ProfileDatabase
from repro.eval import format_percent
from repro.pipeline import prepare_experiment_data, train_amoeba, train_censors
from repro.serve import (
    PolicyServer,
    ServeConfig,
    SyntheticWorkload,
    run_workload,
    summarize_stats,
)


def main() -> None:
    # --- 1. Train and checkpoint ------------------------------------------
    data = prepare_experiment_data("tor", n_censored=80, n_benign=80, max_packets=24, rng=51)
    censor = train_censors(data, names=("DT",), rng=52)["DT"]
    agent = train_amoeba(censor, data, total_timesteps=2000, rng=53)
    checkpoint = Path(tempfile.mkdtemp()) / "policy.npz"
    agent.save_policy(checkpoint)
    print(f"policy checkpoint written to {checkpoint}")

    # --- 2. Serving tier from the checkpoint ------------------------------
    config = ServeConfig.from_amoeba(
        agent.config, data.normalizer.size_scale, max_batch=16, flush_timeout_ms=1.0
    )
    workload = SyntheticWorkload.generate(
        n_sessions=48,
        mix={"tor": 0.6, "https": 0.4},
        arrival_rate_pps=3000.0,
        max_packets=24,
        rng=54,
    )

    # --- 3. Batched vs sequential throughput ------------------------------
    sequential = run_workload(
        PolicyServer.from_checkpoint(checkpoint, config=config.with_overrides(max_batch=1)),
        workload,
    )
    batched = run_workload(PolicyServer.from_checkpoint(checkpoint, config=config), workload)
    print(
        f"sequential (max_batch=1): {sequential.decisions_per_s:8.0f} decisions/s "
        f"(p50 {sequential.p50_latency_ms:.3f} ms, p99 {sequential.p99_latency_ms:.3f} ms)"
    )
    print(
        f"batched    (max_batch={config.max_batch}): {batched.decisions_per_s:7.0f} decisions/s "
        f"(p50 {batched.p50_latency_ms:.3f} ms, p99 {batched.p99_latency_ms:.3f} ms)"
        f"  -> {batched.decisions_per_s / sequential.decisions_per_s:.2f}x"
    )

    # --- 4. Deadline-driven fallback to the profile tier ------------------
    profile_db = ProfileDatabase(handshake_cost_ms=80.0)
    training_results = agent.attack_many(data.splits.attack_train.censored_flows[:40])
    added = profile_db.add_flows(
        [r.adversarial_flow for r in training_results],
        [r.success for r in training_results],
    )
    print(f"\nfallback profile database: {added} successful adversarial profiles")
    deadline_ms = max(batched.p50_latency_ms, 1e-3)  # half the decisions miss
    strict = run_workload(
        PolicyServer.from_checkpoint(
            checkpoint,
            config=config.with_overrides(deadline_ms=deadline_ms, miss_window=4),
            profile_db=profile_db if added else None,
        ),
        workload,
    )
    print(
        f"with a {deadline_ms:.3f} ms decision deadline: "
        f"{format_percent(strict.deadline_miss_rate)} of decisions missed it, "
        f"{format_percent(strict.profile_fallback_rate)} of sessions were demoted "
        "to the offline profile tier"
    )
    fallback_overhead = summarize_stats(strict.stats)["fallback_data_overhead"]
    if added and fallback_overhead > 0:
        print(
            "mean data overhead of the profile-embedded fallback payload: "
            f"{format_percent(fallback_overhead)}"
        )
    print(
        "\nAs in the paper, flows the online path can serve in time get "
        "per-packet adversarial shaping; the rest fall back to pre-stored "
        "profile shapes at extra data/time overhead."
    )


if __name__ == "__main__":
    main()
