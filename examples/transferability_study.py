#!/usr/bin/env python3
"""Transferability study (Figure 10): do adversarial flows transfer across censors?

Trains Amoeba against two source classifiers (a CNN and a random forest),
stores the generated adversarial flows and replays them against every
classifier, printing the resulting ASR matrix.  The paper's observation is
that transfer is strong between similar architectures (SDAE <-> DF,
DT <-> RF) and weaker across families.

Run with:  python examples/transferability_study.py
"""

from __future__ import annotations

from repro.eval import transferability_matrix
from repro.pipeline import prepare_experiment_data, train_amoeba, train_censors


def main() -> None:
    data = prepare_experiment_data("tor", n_censored=100, n_benign=100, max_packets=32, rng=41)
    censors = train_censors(data, names=("DF", "DT", "RF"), rng=42, epochs=8)

    adversarial_by_source = {}
    for source in ("DF", "RF"):
        agent = train_amoeba(censors[source], data, total_timesteps=2500, rng=43)
        report = agent.evaluate(data.splits.test.censored_flows[:20])
        adversarial_by_source[source] = [r.adversarial_flow for r in report.results]
        print(f"agent trained against {source}: ASR on {source} = {report.attack_success_rate:.2f}")

    matrix = transferability_matrix(adversarial_by_source, censors)
    print()
    print("Transferability (rows: trained against, columns: evaluated on):")
    print(matrix.format_table())
    print(f"\ndiagonal mean ASR     = {matrix.diagonal_mean():.3f}")
    print(f"off-diagonal mean ASR = {matrix.off_diagonal_mean():.3f}")


if __name__ == "__main__":
    main()
