#!/usr/bin/env python3
"""Sharded rollout collection and an arms-race sweep over a worker pool.

Demonstrates the distributed tier (``repro.distrib``):

1. train Amoeba with rollout collection sharded across 2 forked worker
   processes (``Amoeba.train(workers=2)``) — each worker hosts half the
   environments plus a censor replica and is refreshed every PPO iteration
   with the current actor/critic/encoder checkpoint.  Under
   ``nn.row_consistent_matmul()`` the run is bit-identical to in-process
   collection, so ``workers`` is purely an execution knob;
2. continue training with pipelined (double-buffered) collection
   (``pipeline=True``): each PPO update runs while the workers already
   collect the next rollout with the pre-update policy;
3. run a small reward-masking arms-race grid through the
   :class:`~repro.distrib.SweepOrchestrator`: grid points execute on a
   fault-tolerant worker pool and land in a JSON results manifest.

Run with:  python examples/sharded_rollout.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.censors import DecisionTreeCensor
from repro.core import Amoeba, AmoebaConfig
from repro.distrib import SweepOrchestrator, SweepTask, amoeba_grid_task
from repro.eval import format_percent
from repro.features import FlowNormalizer
from repro.flows import build_tor_dataset


def main() -> None:
    rng = np.random.default_rng(0)

    dataset = build_tor_dataset(n_censored=120, n_benign=120, rng=rng, max_packets=40)
    splits = dataset.split(rng=rng)
    normalizer = FlowNormalizer(size_scale=1460.0, delay_scale=200.0)
    censor = DecisionTreeCensor(rng=1).fit(splits.clf_train.flows)

    # ------------------------------------------------------------------ #
    # 1. Sharded collection: n_envs=4 split across 2 worker processes.
    # ------------------------------------------------------------------ #
    config = AmoebaConfig.for_tor(n_envs=4, rollout_length=32, max_episode_steps=60)
    agent = Amoeba(censor, normalizer, config, rng=2)
    agent.train(splits.attack_train.censored_flows, total_timesteps=2000, workers=2)
    report = agent.evaluate(splits.test.censored_flows[:20])
    print(
        f"sharded training done: ASR={format_percent(report.attack_success_rate)} "
        f"data overhead={format_percent(report.data_overhead)} "
        f"({censor.query_count} censor queries, merged across worker replicas)"
    )

    # ------------------------------------------------------------------ #
    # 2. Pipelined collection: the PPO update overlaps the next collect.
    # ------------------------------------------------------------------ #
    agent.train(
        splits.attack_train.censored_flows,
        total_timesteps=1000,
        workers=2,
        pipeline=True,
    )
    report = agent.evaluate(splits.test.censored_flows[:20])
    print(
        f"pipelined training done: ASR={format_percent(report.attack_success_rate)} "
        f"(updates hidden behind the in-flight collect)"
    )

    # ------------------------------------------------------------------ #
    # 3. Reward-masking arms-race grid over the sweep worker pool.
    # ------------------------------------------------------------------ #
    tasks = [
        SweepTask(
            task_id=f"mask-{mask_rate:.2f}",
            params={
                "seed": 10,
                "censor": "DT",
                "n_flows": 60,
                "max_packets": 30,
                "n_rounds": 2,
                "amoeba_timesteps": 400,
                "eval_flows": 10,
                "config": {
                    "reward_mask_rate": mask_rate,
                    "n_envs": 2,
                    "rollout_length": 16,
                    "max_episode_steps": 30,
                    "encoder_hidden": 16,
                },
            },
        )
        for mask_rate in (0.0, 0.5, 0.8)
    ]
    orchestrator = SweepOrchestrator(amoeba_grid_task, n_workers=2)
    manifest_path = Path("sweep_manifest.json")
    records = orchestrator.run(tasks, manifest_path=manifest_path)
    for record in records:
        if record.status == "ok":
            trajectory = ", ".join(
                format_percent(asr) for asr in record.result["asr_trajectory"]
            )
            print(f"{record.task_id}: ASR per round [{trajectory}]")
        else:
            print(f"{record.task_id}: FAILED after {record.attempts} attempts")
    print(f"sweep manifest written to {manifest_path}")


if __name__ == "__main__":
    main()
