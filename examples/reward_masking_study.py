#!/usr/bin/env python3
"""Reward-masking study (Figures 8 and 9): learning from sparse censor feedback.

In practice an attacker cannot observe the censor's verdict after every
packet; the paper models this by masking the per-step adversarial reward with
probability p (masked steps return the neutral value 0.5 and perform no
censor query).  This example sweeps the mask rate and reports the attack
success rate and the actual number of censor queries used during training.

Run with:  python examples/reward_masking_study.py
"""

from __future__ import annotations

from repro.core import reward_mask_sweep
from repro.core.config import AmoebaConfig
from repro.eval import format_table
from repro.pipeline import prepare_experiment_data, train_censors


def main() -> None:
    data = prepare_experiment_data("tor", n_censored=100, n_benign=100, max_packets=32, rng=51)
    censor = train_censors(data, names=("DT",), rng=52)["DT"]

    config = AmoebaConfig.for_tor(n_envs=2, rollout_length=32, max_episode_steps=64)
    points = reward_mask_sweep(
        censor,
        data.normalizer,
        data.splits.attack_train.censored_flows,
        data.splits.test.censored_flows[:15],
        mask_rates=(0.0, 0.3, 0.6, 0.9),
        total_timesteps=2000,
        base_config=config,
        repeats=1,
        rng=53,
    )

    rows = [
        {
            "mask_rate": f"{point.mask_rate:.0%}",
            "actual_queries": point.actual_queries,
            "asr": point.attack_success_rate,
            "data_overhead": point.data_overhead,
            "time_overhead": point.time_overhead,
        }
        for point in points
    ]
    print(
        format_table(
            rows,
            columns=["mask_rate", "actual_queries", "asr", "data_overhead", "time_overhead"],
            title="Reward masking: ASR vs mask rate (DT censor, Tor dataset)",
        )
    )
    print(
        "\nAs in the paper, Amoeba keeps learning even when most per-packet "
        "feedback is unavailable — the query budget shrinks with the mask rate "
        "while the ASR degrades gracefully."
    )


if __name__ == "__main__":
    main()
