#!/usr/bin/env python3
"""Offline deployment via adversarial flow profiles (Section 5.6.1).

Online per-packet inference may be slower than the inter-packet gaps of real
traffic, so the paper proposes pre-generating adversarial flow *shapes*
(profiles), storing them in a database synchronised between the two proxy
endpoints, and embedding real payload into those shapes at transmission
time.  This example:

1. trains Amoeba against a censor and collects successful adversarial flows;
2. measures the single-step inference latency and compares it against the
   same-direction inter-packet delay distribution (Figure 11);
3. builds a profile database and reports the data/time overhead of the
   offline mode versus the online mode (Table 2).

Run with:  python examples/profile_deployment.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ProfileDatabase
from repro.eval import delay_distribution_summary, format_percent, fraction_below
from repro.pipeline import prepare_experiment_data, train_amoeba, train_censors


def main() -> None:
    data = prepare_experiment_data("tor", n_censored=100, n_benign=100, max_packets=32, rng=31)
    censors = train_censors(data, names=("RF",), rng=32)
    censor = censors["RF"]
    agent = train_amoeba(censor, data, total_timesteps=2500, rng=33)

    # --- Online mode -------------------------------------------------------
    online = agent.evaluate(data.splits.test.censored_flows[:20])
    print(
        f"online mode:  ASR={format_percent(online.attack_success_rate)}  "
        f"DO={format_percent(online.data_overhead)}  TO={format_percent(online.time_overhead)}"
    )

    # --- Inference latency vs inter-packet delays (Figure 11) --------------
    state = np.zeros(agent.config.state_dim)
    start = time.perf_counter()
    for _ in range(200):
        agent.actor.act(state, deterministic=True)
    inference_ms = (time.perf_counter() - start) / 200 * 1000.0
    delays = np.concatenate([flow.same_direction_delays() for flow in data.dataset.flows])
    print(f"single-step inference latency: {inference_ms:.3f} ms")
    print(f"same-direction inter-packet delays: {delay_distribution_summary(delays)}")
    print(
        f"fraction of gaps shorter than the inference latency: "
        f"{format_percent(fraction_below(delays, inference_ms))}"
    )

    # --- Offline profile mode (Table 2) ------------------------------------
    training_results = agent.attack_many(data.splits.attack_train.censored_flows[:40])
    database = ProfileDatabase(handshake_cost_ms=80.0)
    added = database.add_flows(
        [r.adversarial_flow for r in training_results], [r.success for r in training_results]
    )
    print(f"\nprofile database: {added} successful adversarial profiles stored")
    if added == 0:
        print("no successful profiles at this training scale; increase total_timesteps")
        return
    summary = database.overhead_summary(data.splits.test.censored_flows[:20], rng=34)
    print(
        f"offline mode: DO={format_percent(summary['data_overhead'])}  "
        f"TO={format_percent(summary['time_overhead'])}  "
        f"profiles per flow={summary['mean_profiles_per_flow']:.2f}  "
        f"fully embedded={format_percent(summary['fully_embedded_rate'])}"
    )
    print(
        "\nAs in the paper, the offline mode trades extra data/time overhead "
        "(dummy packets, extra handshakes) for zero per-packet inference cost."
    )


if __name__ == "__main__":
    main()
