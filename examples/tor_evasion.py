#!/usr/bin/env python3
"""Tor evasion scenario: subvert multiple censoring classifiers at once.

Reproduces a miniature of the paper's Table 1 workflow on the Tor dataset:
train several censor families (neural and tree-based), train one Amoeba
agent per censor, and compare attack success rates and overheads.  It also
demonstrates the censor gateway: adversarial flows pass the gateway that
blocks the unmodified Tor flows.

Run with:  python examples/tor_evasion.py
"""

from __future__ import annotations

import numpy as np

from repro.censors import CensorGateway, SocketPair
from repro.eval import format_percent, format_table
from repro.eval.metrics import classifier_detection_report
from repro.pipeline import prepare_experiment_data, train_amoeba, train_censors


def main() -> None:
    data = prepare_experiment_data("tor", n_censored=120, n_benign=120, max_packets=36, rng=7)
    print(f"Tor dataset: {data.dataset.summary()}")

    censor_names = ("DF", "DT", "RF")
    censors = train_censors(data, names=censor_names, rng=8, epochs=8)

    rows = []
    agents = {}
    for name, censor in censors.items():
        baseline = classifier_detection_report(censor, data.splits.test.flows)
        agent = train_amoeba(censor, data, total_timesteps=2500, rng=9)
        agents[name] = agent
        report = agent.evaluate(data.splits.test.censored_flows[:25])
        rows.append(
            {
                "censor": name,
                "baseline_accuracy": baseline["accuracy"],
                "baseline_f1": baseline["f1"],
                "amoeba_asr": report.attack_success_rate,
                "data_overhead": report.data_overhead,
                "time_overhead": report.time_overhead,
            }
        )

    print()
    print(
        format_table(
            rows,
            columns=[
                "censor",
                "baseline_accuracy",
                "baseline_f1",
                "amoeba_asr",
                "data_overhead",
                "time_overhead",
            ],
            title="Tor evasion: per-censor detection vs Amoeba attack",
        )
    )

    # Gateway demonstration: the same censor deployed on a gateway with a
    # socket-pair blacklist.  Unmodified Tor flows get the pair blocked;
    # adversarial flows keep the connection alive.
    gateway = CensorGateway(censors["DT"])
    plain = data.splits.test.censored_flows[0]
    plain_pair = SocketPair("10.1.0.1", 42000, "203.0.113.7", 443)
    adversarial = agents["DT"].attack(plain).adversarial_flow
    adv_pair = SocketPair("10.1.0.1", 42001, "203.0.113.7", 443)

    plain_decision = gateway.observe(plain_pair, plain)
    adv_decision = gateway.observe(adv_pair, adversarial)
    print()
    print(f"gateway decision on unmodified Tor flow:   allowed={plain_decision.allowed}")
    print(f"gateway decision on Amoeba-shaped flow:    allowed={adv_decision.allowed}")
    print(f"gateway statistics: {gateway.statistics}")


if __name__ == "__main__":
    main()
