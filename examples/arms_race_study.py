#!/usr/bin/env python3
"""Arms-race study (Section 5.6.2): censor retraining vs. Amoeba retraining.

The paper notes that a censor could harvest the adversarial flows Amoeba
produces, label them as sensitive, retrain its classifier and thereby
invalidate the learned policy — and leaves open whether this iterated game
settles anywhere.  This example runs a few rounds of that loop against a
random-forest censor and prints the trajectory of censor detection accuracy
versus attacker success rate.

Run with:  python examples/arms_race_study.py
"""

from __future__ import annotations

from repro.censors import RandomForestCensor
from repro.core import AmoebaConfig, run_arms_race
from repro.eval import format_table
from repro.pipeline import prepare_experiment_data


def main() -> None:
    data = prepare_experiment_data("tor", n_censored=100, n_benign=100, max_packets=32, rng=61)
    config = AmoebaConfig.for_tor(n_envs=2, rollout_length=32, max_episode_steps=64)

    result = run_arms_race(
        censor_factory=lambda: RandomForestCensor(n_estimators=15, rng=0),
        normalizer=data.normalizer,
        clf_train_flows=data.splits.clf_train.flows,
        attack_train_flows=data.splits.attack_train.censored_flows,
        test_flows=data.splits.test.flows,
        eval_flows=data.splits.test.censored_flows[:15],
        n_rounds=3,
        amoeba_timesteps=1500,
        harvest_per_round=15,
        config=config,
        rng=62,
    )

    rows = [
        {
            "round": round_.round_index,
            "censor_accuracy": round_.censor_accuracy,
            "censor_f1": round_.censor_f1,
            "amoeba_asr": round_.attack_success_rate,
            "data_overhead": round_.data_overhead,
            "harvested": round_.collected_adversarial_flows,
        }
        for round_ in result.rounds
    ]
    print(
        format_table(
            rows,
            columns=["round", "censor_accuracy", "censor_f1", "amoeba_asr", "data_overhead", "harvested"],
            title="Arms race: RF censor retrained on harvested adversarial flows each round",
        )
    )
    print(f"\nattacker dominates in the final round: {result.attacker_dominates()}")
    print(
        "Whether this game converges to an equilibrium is the open question the "
        "paper raises; vary n_rounds, harvest_per_round and amoeba_timesteps to explore it."
    )


if __name__ == "__main__":
    main()
