#!/usr/bin/env python3
"""Quickstart: train Amoeba against one censoring classifier and evade it.

This is the smallest end-to-end use of the public API:

1. synthesise a Tor-vs-HTTPS dataset and split it (Section 5.4 of the paper);
2. train a censoring classifier (a decision tree over 166 statistical
   features) on the censor's share of the data;
3. train the Amoeba agent against that classifier using only its
   allow/block decisions (black-box threat model);
4. evaluate attack success rate, data overhead and time overhead on
   held-out flows.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.censors import DecisionTreeCensor
from repro.core import Amoeba, AmoebaConfig
from repro.eval import format_percent
from repro.eval.metrics import classifier_detection_report
from repro.features import FlowNormalizer
from repro.flows import build_tor_dataset


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Dataset: Tor (censored) vs plain HTTPS (benign) flows at the TCP layer.
    dataset = build_tor_dataset(n_censored=150, n_benign=150, rng=rng, max_packets=40)
    splits = dataset.split(rng=rng)
    print(f"dataset: {len(dataset)} flows, splits = {splits.sizes()}")

    # 2. The censor trains its classifier on its own capture (clf_train).
    censor = DecisionTreeCensor(rng=1).fit(splits.clf_train.flows)
    baseline = classifier_detection_report(censor, splits.test.flows)
    print(
        f"censor (DT) before any attack: accuracy={baseline['accuracy']:.3f} "
        f"F1={baseline['f1']:.3f}"
    )

    # 3. The attacker trains Amoeba on its own traffic (attack_train), observing
    #    only the censor's per-prefix allow/block decisions.
    normalizer = FlowNormalizer(size_scale=1460.0, delay_scale=200.0)
    config = AmoebaConfig.for_tor(n_envs=2, rollout_length=32, max_episode_steps=80)
    agent = Amoeba(censor, normalizer, config, rng=2)
    agent.train(splits.attack_train.censored_flows, total_timesteps=3000)
    print(f"training used {censor.query_count} censor queries")

    # 4. Evaluate on held-out censored flows.
    report = agent.evaluate(splits.test.censored_flows)
    print(
        f"Amoeba: ASR={format_percent(report.attack_success_rate)}  "
        f"data overhead={format_percent(report.data_overhead)}  "
        f"time overhead={format_percent(report.time_overhead)}"
    )

    # Inspect one adversarial flow.
    result = report.results[0]
    print(
        f"example flow: {result.original_flow.n_packets} packets -> "
        f"{result.adversarial_flow.n_packets} adversarial packets, "
        f"evaded={result.success}, actions={result.action_counts}"
    )


if __name__ == "__main__":
    main()
