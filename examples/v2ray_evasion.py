#!/usr/bin/env python3
"""V2Ray (TLS-in-TLS) evasion scenario with white-box baselines.

The V2Ray dataset is observed at the TLS-record layer (records up to 16 KB),
so the action space for packet sizes is an order of magnitude larger than on
the Tor dataset — the paper uses a larger data-overhead coefficient
(lambda_data = 2) for this reason.  This example trains a neural censor (DF)
on V2Ray-vs-HTTPS records, attacks it with the three white-box baselines
(CW, NIDSGAN, BAP) and with black-box Amoeba, and compares the results.

Run with:  python examples/v2ray_evasion.py
"""

from __future__ import annotations

from repro.attacks import BAPAttack, CWAttack, NIDSGANAttack
from repro.eval import format_table
from repro.eval.metrics import classifier_detection_report
from repro.pipeline import make_censor, prepare_experiment_data, train_amoeba


def main() -> None:
    data = prepare_experiment_data("v2ray", n_censored=100, n_benign=100, max_packets=32, rng=21)
    print(f"V2Ray dataset: {data.dataset.summary()}")

    censor = make_censor("DF", data, rng=22, epochs=10)
    censor.fit(data.splits.clf_train.flows)
    baseline = classifier_detection_report(censor, data.splits.test.flows)
    print(f"DF censor baseline: accuracy={baseline['accuracy']:.3f} F1={baseline['f1']:.3f}")

    attack_train = data.splits.attack_train.censored_flows
    test_flows = data.splits.test.censored_flows[:20]

    rows = []
    cw = CWAttack(censor, max_iterations=20).evaluate(test_flows)
    rows.append(cw.as_dict())
    nidsgan = NIDSGANAttack(censor, epochs=6, rng=23).fit(attack_train[:40]).evaluate(test_flows)
    rows.append(nidsgan.as_dict())
    bap = BAPAttack(censor, epochs=10, rng=24).fit(attack_train[:40]).evaluate(test_flows)
    rows.append(bap.as_dict())

    agent = train_amoeba(censor, data, total_timesteps=2500, rng=25)
    amoeba_report = agent.evaluate(test_flows)
    rows.append(
        {
            "attack": "Amoeba (black-box)",
            "asr": amoeba_report.attack_success_rate,
            "data_overhead": amoeba_report.data_overhead,
            "time_overhead": amoeba_report.time_overhead,
            "queries": censor.query_count,
            "n_flows": amoeba_report.n_flows,
        }
    )

    print()
    print(
        format_table(
            rows,
            columns=["attack", "asr", "data_overhead", "time_overhead", "queries", "n_flows"],
            title="V2Ray evasion: white-box baselines vs black-box Amoeba (DF censor)",
        )
    )
    print(
        "\nNote: the white-box attacks perturb the classifier's input representation "
        "directly (they need gradients and full flows); only Amoeba produces "
        "transmissible packet sequences under the black-box threat model."
    )


if __name__ == "__main__":
    main()
